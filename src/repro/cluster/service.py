"""The cluster routing service: partition + shards + replicas + dispatch.

:class:`ClusterRoutingService` mirrors the PR-1 :class:`RoutingService` API
(``submit`` / ``submit_many`` / ``stats`` / ``close``, context manager) but
serves the catalog from a set of shard workers behind a scatter-gather
dispatcher.  Each shard owns a disjoint slice of the databases, decodes with a
proportionally smaller beam budget, and keeps its own route cache and metrics;
the dispatcher merges per-shard candidates into one deterministic top-k whose
scores are pooled softmax weights (see :func:`repro.core.router.merge_route_lists`).

Throughput scales with shard count even on one core because each shard's
constrained beam search explores a fraction of the monolithic search budget;
on many cores the thread-pool scatter adds real parallelism on top.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

from repro.core.router import SchemaRoute, SchemaRouter
from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.partition import ShardAssignment, partition_catalog
from repro.cluster.replica import ReplicaSet
from repro.cluster.shard import ShardWorker
from repro.cluster.wave import ClusterWaveEngine
from repro.obs import Tracer
from repro.obs.health import (
    HealthPolicy,
    HealthReport,
    dispatcher_health,
    error_rate_health,
    rollup,
)
from repro.serving.metrics import (
    MetricsRegistry,
    QPS_WINDOW_SECONDS,
    WindowedCounter,
)
from repro.serving.service import ServingConfig

#: Supported shard-worker backends.
WORKER_BACKENDS = frozenset({"inproc", "subprocess"})


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one cluster instance."""

    num_shards: int = 4
    #: Partition strategy: "round_robin" | "size_balanced" | "joinability".
    strategy: str = "size_balanced"
    #: Where shard workers live: "inproc" (threads sharing this interpreter)
    #: or "subprocess" (one ``repro.cluster.procworker`` process per replica,
    #: driven over the :mod:`repro.cluster.transport` wire protocol, so decode
    #: runs on separate cores).  Subprocess workers boot from per-shard
    #: checkpoint directories; ``from_router`` writes one automatically.
    worker_backend: str = "inproc"
    #: Replicas per shard (1 = no replication).
    replicas: int = 1
    #: Beam budget per shard on the fast tier.  None derives 1 when the
    #: escalation cascade is enabled (the careful tier covers ambiguity) and
    #: ``max(1, num_beams // num_shards)`` otherwise -- the shard only has to
    #: surface its own best candidates, the cross-shard merge recovers the
    #: global top-k.
    shard_num_beams: int | None = None
    #: Beam groups per shard; None means 1 (standard, non-diverse beam search).
    #: Diversity exists to spread a monolithic beam across many databases;
    #: inside a shard the partition already did that, and penalty-free search
    #: ranks the shard's own candidates more faithfully.
    shard_beam_groups: int | None = None
    #: Confidence-gated escalation: a question whose merged top-1 softmax
    #: weight falls below this threshold is re-scattered to a wide-beam tier.
    #: None disables the cascade (single-pass at ``shard_num_beams``).
    escalation_threshold: float | None = 0.8
    #: Beam budget of the escalation tier; None derives
    #: ``max(2, num_beams // num_shards)`` from the master router.
    escalation_num_beams: int | None = None
    #: Decode whole scatter waves through one stacked kernel stream
    #: (:class:`repro.cluster.wave.ClusterWaveEngine`) instead of one
    #: thread-pool call per shard.  Engages only for unreplicated inproc
    #: fleets whose shard models share the master trunk by reference;
    #: anything else (subprocess workers, replication, checkpoint-booted
    #: weight copies) falls back to the pool dispatcher transparently.
    wave_decode: bool = False
    #: Slice each shard's target vocabulary / output head to its own
    #: sub-catalog tokens (see :func:`repro.cluster.shard.project_router`):
    #: decode cost scales with the slice, and final scores are calibrated by
    #: exact full-vocabulary rescoring so the cross-shard merge still
    #: compares like with like.
    sliced_vocabulary: bool = False
    #: Drive subprocess workers as multiplexing, pipelined clients (wire
    #: protocol 3: correlation-id demux, concurrent in-flight frames, binary
    #: route payloads).  ``False`` forces the serial protocol-2 discipline --
    #: one frame in flight per worker, hex-float JSON payloads -- kept for
    #: old-peer emulation and A/B benchmarks.  Inproc workers ignore this.
    pipelined_transport: bool = True
    #: Per-replica attempt timeout (None = wait forever).
    shard_timeout_seconds: float | None = None
    #: Merge whatever shards answered instead of failing the whole request.
    allow_partial: bool = False
    quarantine_seconds: float = 30.0
    #: Default number of candidate schemata per answer (None = router default).
    max_candidates: int | None = None
    #: Per-shard route cache settings (each shard owns an independent cache).
    enable_cache: bool = True
    cache_size: int = 2048
    cache_ttl_seconds: float | None = None
    max_workers: int | None = None
    #: Record per-request traces at the cluster entry point.  Shard-level
    #: services never start their own traces (the cluster's context threads
    #: through to them), so this is the only tracing switch of a cluster.
    enable_tracing: bool = True
    #: How many slowest complete traces the journal retains as exemplars.
    trace_exemplars: int = 8

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.worker_backend not in WORKER_BACKENDS:
            raise ValueError(f"worker_backend must be one of "
                             f"{sorted(WORKER_BACKENDS)}, not {self.worker_backend!r}")
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.shard_num_beams is not None and self.shard_num_beams <= 0:
            raise ValueError("shard_num_beams must be positive (or None)")
        if self.escalation_threshold is not None \
                and not 0.0 < self.escalation_threshold <= 1.0:
            raise ValueError("escalation_threshold must be in (0, 1] (or None)")
        if self.escalation_num_beams is not None and self.escalation_num_beams <= 0:
            raise ValueError("escalation_num_beams must be positive (or None)")

    def serving_config(self) -> ServingConfig:
        """The per-shard RoutingService configuration this cluster implies."""
        return ServingConfig(enable_cache=self.enable_cache,
                             cache_size=self.cache_size,
                             cache_ttl_seconds=self.cache_ttl_seconds,
                             enable_batching=False,
                             # The cluster owns the trace; shard services
                             # record spans into it rather than starting
                             # their own per-wave traces.
                             enable_tracing=False)

    def shard_beams_for(self, master: SchemaRouter) -> tuple[int, int]:
        """(num_beams, beam_groups) of the fast tier for shards of ``master``."""
        if self.shard_num_beams is not None:
            beams = self.shard_num_beams
        elif self.escalation_threshold is not None:
            beams = 1
        else:
            beams = max(1, master.config.num_beams // self.num_shards)
        groups = self.shard_beam_groups or 1
        if beams % groups != 0:
            groups = beams
        return beams, groups

    def escalation_beams_for(self, master: SchemaRouter) -> int | None:
        """Beam budget of the careful tier (None when the cascade is off)."""
        if self.escalation_threshold is None:
            return None
        return self.escalation_num_beams or max(2, master.config.num_beams
                                                // self.num_shards)


class ClusterRoutingService:
    """Serves schema routing over a partitioned catalog."""

    def __init__(self, shards: Sequence[ReplicaSet], assignment: ShardAssignment,
                 config: ClusterConfig | None = None,
                 master_router: SchemaRouter | None = None,
                 catalog_version: int = 0) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if len(shards) != assignment.num_shards:
            raise ValueError(f"{len(shards)} shards but the assignment has "
                             f"{assignment.num_shards}")
        self.config = config or ClusterConfig(num_shards=len(shards))
        self.assignment = assignment
        self.master_router = master_router
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(metrics=self.metrics,
                             enabled=self.config.enable_tracing,
                             max_slow_traces=self.config.trace_exemplars)
        self._shards = list(shards)
        self._catalog_version = catalog_version
        # Judge replication by what the replica sets actually contain, not by
        # config.replicas: with real replication the per-attempt timeout lives
        # inside the ReplicaSet (so failover engages); without it the
        # dispatcher enforces the timeout around the single worker.
        self._max_replicas = max(replica_set.num_replicas
                                 for replica_set in self._shards)
        default_candidates = 5
        if master_router is not None:
            default_candidates = master_router.config.max_candidate_schemas
        careful_targets = None
        if self.config.escalation_threshold is not None:
            careful_targets = [
                (lambda questions, max_candidates, trace=None, _rs=replica_set:
                 _rs.route_batch(questions, max_candidates, careful=True,
                                 trace=trace))
                for replica_set in self._shards
            ]
        self.wave_engine: ClusterWaveEngine | None = None
        self._wave_disabled_reason: str | None = None
        if self.config.wave_decode:
            self.wave_engine, self._wave_disabled_reason = self._build_wave_engine()
        self.dispatcher = ClusterDispatcher(
            [replica_set.route_batch for replica_set in self._shards],
            default_max_candidates=default_candidates,
            shard_timeout_seconds=None if self._max_replicas > 1
            else self.config.shard_timeout_seconds,
            allow_partial=self.config.allow_partial,
            max_workers=self.config.max_workers,
            careful_targets=careful_targets,
            escalation_threshold=self.config.escalation_threshold,
            wave_engine=self.wave_engine,
        )
        if self.config.shard_timeout_seconds is not None and self._max_replicas > 1:
            for replica_set in self._shards:
                if replica_set.attempt_timeout_seconds is None:
                    replica_set.attempt_timeout_seconds = self.config.shard_timeout_seconds
        # Routed-load window: per-database counters of merged top-1 answers.
        # In a scatter-gather cluster every shard sees every question, so
        # request QPS is flat across shards by construction; which databases
        # *win* the questions is the only load signal that distinguishes a
        # hot shard, and the control plane's rebalancer feeds on it.
        self._load_lock = threading.Lock()
        self._routed_windows: dict[str, WindowedCounter] = {}
        #: A temp checkpoint directory this service wrote for its own
        #: subprocess workers (removed on close); None when the caller owns it.
        self._owned_checkpoint_dir: Path | None = None
        self._closed = False

    def _build_wave_engine(self) -> "tuple[ClusterWaveEngine | None, str | None]":
        """(engine, None) when the fleet qualifies, else (None, reason).

        Wave decode needs a single worker per shard that lives in this
        process and shares the master trunk; everything else keeps the
        thread-pool scatter path (which is why this never raises)."""
        if self._max_replicas > 1:
            return None, "replication enabled (failover needs the pool path)"
        workers = [replica_set.workers[0] for replica_set in self._shards]
        if not all(isinstance(worker, ShardWorker) for worker in workers):
            return None, "shard workers are not inproc"
        try:
            return ClusterWaveEngine(workers), None
        except ValueError as error:
            return None, str(error)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_router(cls, master: SchemaRouter, config: ClusterConfig | None = None,
                    assignment: ShardAssignment | None = None,
                    checkpoint_dir: str | Path | None = None) -> "ClusterRoutingService":
        """Partition the master router's catalog and project one worker
        (times ``config.replicas``) per shard.  No training happens: every
        shard shares the master's trained model.

        With ``worker_backend="subprocess"`` the projected cluster is first
        written to ``checkpoint_dir`` (a temporary directory when omitted,
        removed again on ``close()``) and then booted from it, because
        subprocess workers load their shard from disk rather than inheriting
        in-memory weights.
        """
        config = config or ClusterConfig()
        if config.worker_backend == "subprocess":
            from repro.cluster.checkpoint import load_cluster, save_cluster

            # The bootstrap twin exists only to be checkpointed, and
            # save_cluster writes one checkpoint per shard regardless of
            # replication -- so project a single replica per shard instead of
            # config.replicas throwaway ones.
            inproc = cls.from_router(master,
                                     replace(config, worker_backend="inproc",
                                             replicas=1),
                                     assignment=assignment)
            # The manifest should record the caller's intent (subprocess
            # backend, real replica count), not the bootstrap twin's shape:
            # a bare load_cluster(path) must reproduce what was built here.
            inproc.config = config
            owned_dir: Path | None = None
            if checkpoint_dir is None:
                owned_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
                checkpoint_dir = owned_dir
            try:
                save_cluster(inproc, checkpoint_dir)
                service = load_cluster(checkpoint_dir, config=config)
            except BaseException:
                # A failed boot must not leave router weights behind in /tmp.
                if owned_dir is not None:
                    shutil.rmtree(owned_dir, ignore_errors=True)
                raise
            finally:
                inproc.close()
            service._owned_checkpoint_dir = owned_dir
            return service
        if assignment is None:
            assignment = partition_catalog(master.graph.catalog, config.num_shards,
                                           strategy=config.strategy)
        elif assignment.num_shards != config.num_shards:
            config = replace(config, num_shards=assignment.num_shards)
        beams, groups = config.shard_beams_for(master)
        escalation_beams = config.escalation_beams_for(master)
        shards = []
        for shard_id, databases in enumerate(assignment.shards):
            workers = [
                ShardWorker.from_projection(shard_id, databases, master,
                                            serving_config=config.serving_config(),
                                            num_beams=beams, beam_groups=groups,
                                            escalation_num_beams=escalation_beams,
                                            sliced_vocabulary=config.sliced_vocabulary)
                for _ in range(config.replicas)
            ]
            shards.append(ReplicaSet(
                shard_id, workers,
                quarantine_seconds=config.quarantine_seconds,
                attempt_timeout_seconds=config.shard_timeout_seconds
                if config.replicas > 1 else None,
            ))
        return cls(shards, assignment, config=config, master_router=master)

    @classmethod
    def from_checkpoint(cls, path: str | Path,
                        config: ClusterConfig | None = None) -> "ClusterRoutingService":
        """Boot a cluster from a directory written by ``save_cluster``."""
        from repro.cluster.checkpoint import load_cluster

        return load_cluster(path, config=config)

    # -- request path --------------------------------------------------------
    def submit(self, question: str,
               max_candidates: int | None = None) -> list[SchemaRoute]:
        """Route one question across all shards (blocking, thread-safe)."""
        if self._closed:
            raise RuntimeError("the cluster service has been closed")
        started = time.monotonic()
        self.metrics.increment("requests")
        trace = self.tracer.start_trace("request", question_chars=len(question))
        try:
            routes = self.dispatcher.route(
                question, max_candidates=max_candidates or self.config.max_candidates,
                trace=trace)
        except BaseException as exc:
            self.metrics.increment("errors")
            if trace is not None:
                trace.finish(status="error", error=f"{type(exc).__name__}: {exc}")
                trace = None
            raise
        finally:
            if trace is not None:
                trace.finish()
        self.metrics.increment("routed")
        self._note_routed([routes])
        self.metrics.observe_latency(time.monotonic() - started)
        return routes

    def submit_many(self, questions: Sequence[str],
                    max_candidates: int | None = None) -> list[list[SchemaRoute]]:
        """Route a wave of questions as one scatter-gather dispatch."""
        if self._closed:
            raise RuntimeError("the cluster service has been closed")
        if not questions:
            return []
        started = time.monotonic()
        self.metrics.increment("requests", len(questions))
        trace = self.tracer.start_trace("request_wave", questions=len(questions))
        try:
            results = self.dispatcher.route_batch(
                list(questions),
                max_candidates=max_candidates or self.config.max_candidates,
                trace=trace)
        except BaseException as exc:
            self.metrics.increment("errors", len(questions))
            if trace is not None:
                trace.finish(status="error", error=f"{type(exc).__name__}: {exc}")
                trace = None
            raise
        finally:
            if trace is not None:
                trace.finish()
        self.metrics.increment("routed", len(questions))
        self._note_routed(results)
        elapsed = time.monotonic() - started
        self.metrics.observe_latency(elapsed / len(questions),
                                     count=len(questions))
        return results

    def _note_routed(self, results: Sequence[list[SchemaRoute]]) -> None:
        """Record each question's merged top-1 database in its load window."""
        # Tally per database first so a whole wave costs one lock acquisition
        # per database, not two per question.
        tally: dict[str, int] = {}
        for routes in results:
            if routes:
                database = routes[0].database
                tally[database] = tally.get(database, 0) + 1
        for database, count in tally.items():
            with self._load_lock:
                window = self._routed_windows.get(database)
                if window is None:
                    window = self._routed_windows[database] = WindowedCounter()
            window.note(count)

    def routing_load(self) -> dict:
        """Who is winning the traffic: trailing-window routed-answer counts.

        ``per_database`` maps database name to how many questions it answered
        (as merged top-1) inside the window; ``per_shard`` sums those counts
        under the current assignment, which is the rebalancer's hot/cold
        signal.  Databases whose window has fully expired are dropped, so a
        yesterday's-hot-set database does not linger at zero forever.
        """
        with self._load_lock:
            windows = list(self._routed_windows.items())
        per_database = {}
        for name, window in sorted(windows):
            count = window.total()
            if count:
                per_database[name] = count
        per_shard = [0] * self.num_shards
        for name, count in per_database.items():
            try:
                per_shard[self.assignment.shard_of(name)] += count
            except KeyError:
                continue  # routed to a database since dropped from the catalog
        return {
            "window_seconds": QPS_WINDOW_SECONDS,
            "total": sum(per_database.values()),
            "per_database": per_database,
            "per_shard": per_shard,
        }

    # -- topology ------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[ReplicaSet]:
        return self._shards

    @property
    def database_names(self) -> list[str]:
        return self.assignment.database_names

    def shard_of(self, database: str) -> int:
        return self.assignment.shard_of(database)

    # -- catalog change hooks ------------------------------------------------
    @property
    def catalog_version(self) -> int:
        return self._catalog_version

    def bump_catalog_version(self) -> int:
        self._catalog_version += 1
        return self._catalog_version

    def notify_catalog_changed(self, database: str | None = None) -> None:
        """Invalidate route caches: one shard's when ``database`` is given
        (only its owner is affected), every shard's otherwise."""
        self.bump_catalog_version()
        if database is not None:
            self._shards[self.assignment.shard_of(database)].notify_catalog_changed()
        else:
            for replica_set in self._shards:
                replica_set.notify_catalog_changed()

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """Cluster-wide rollup plus per-shard detail."""
        snapshot = self.metrics.snapshot()
        shard_stats = []
        total_requests = 0
        total_hits = 0
        # Route-cache effectiveness rolled up across every worker of every
        # tier: without this, cache behavior is only visible per worker, deep
        # inside the per-shard detail.
        cache_rollup = {"size": 0, "hits": 0, "misses": 0, "evictions": 0,
                        "expirations": 0, "invalidations": 0}
        # Wire-level rollup across subprocess workers (absent for pure inproc
        # fleets): how deep the multiplexed pipe runs and what it costs.
        transport_rollup = {"workers": 0, "requests_sent": 0, "in_flight": 0,
                            "max_in_flight": 0, "pipelined_frames": 0,
                            "binary_responses": 0, "bytes_sent": 0,
                            "bytes_received": 0, "timeouts": 0, "crashes": 0}
        for replica_set in self._shards:
            entry = replica_set.stats()
            entry["workers"] = [worker.stats() for worker in replica_set.workers]
            qps = 0.0
            window_qps = 0.0
            for worker_stats in entry["workers"]:
                transport = worker_stats.get("transport")
                if transport and transport.get("backend") == "subprocess":
                    transport_rollup["workers"] += 1
                    transport_rollup["max_in_flight"] = max(
                        transport_rollup["max_in_flight"],
                        transport.get("max_in_flight", 0))
                    for key in ("requests_sent", "in_flight", "pipelined_frames",
                                "binary_responses", "bytes_sent",
                                "bytes_received", "timeouts", "crashes"):
                        transport_rollup[key] += transport.get(key, 0)
                # Count both decode tiers: escalated traffic goes through the
                # careful service, whose counters live under "careful".
                for tier in (worker_stats, worker_stats.get("careful")):
                    if tier is None:
                        continue
                    counters = tier["counters"]
                    total_requests += counters.get("requests", 0)
                    total_hits += counters.get("cache_hits", 0)
                    qps += tier["qps"]
                    window_qps += tier.get("qps_window", 0.0)
                    tier_cache = tier.get("cache")
                    if tier_cache:
                        for key in cache_rollup:
                            cache_rollup[key] += tier_cache.get(key, 0)
            entry["qps"] = round(qps, 2)
            entry["qps_window"] = round(window_qps, 2)
            shard_stats.append(entry)
        lookups = cache_rollup["hits"] + cache_rollup["misses"]
        cache_rollup["hit_rate"] = (round(cache_rollup["hits"] / lookups, 4)
                                    if lookups else 0.0)
        snapshot["num_shards"] = self.num_shards
        snapshot["replicas"] = self._max_replicas
        snapshot["worker_backend"] = self.config.worker_backend
        snapshot["strategy"] = self.assignment.strategy
        snapshot["assignment"] = [list(databases) for databases in self.assignment.shards]
        snapshot["catalog_version"] = self._catalog_version
        snapshot["cache_hit_rate"] = (round(total_hits / total_requests, 4)
                                      if total_requests else 0.0)
        snapshot["cache"] = cache_rollup
        if transport_rollup["workers"]:
            snapshot["transport"] = transport_rollup
        snapshot["traces"] = self.tracer.journal.stats()
        snapshot["routing_load"] = self.routing_load()
        snapshot["dispatcher"] = {
            "shard_failures": self.dispatcher.shard_failures,
            "shards_timed_out": self.dispatcher.shards_timed_out,
            "partial_gathers": self.dispatcher.partial_gathers,
            "escalations": self.dispatcher.escalations,
        }
        if self.wave_engine is not None:
            wave = self.wave_engine.stats()
            wave["enabled"] = True
            snapshot["wave"] = wave
        elif self.config.wave_decode:
            # Wave decode was requested but the fleet did not qualify --
            # surface why, so "it silently ran the pool path" is diagnosable.
            snapshot["wave"] = {"enabled": False,
                                "reason": self._wave_disabled_reason}
        snapshot["shards"] = shard_stats
        return snapshot

    def health(self, policy: HealthPolicy | None = None) -> HealthReport:
        """One cluster verdict, rolled up bottom-up.

        Children are the replica sets (which nest their workers, which nest
        their decode tiers); the cluster's own probes judge its error rate
        and the dispatcher's shard-timeout / escalation rates.  Per the
        rollup precedence, one ``failing`` shard degrades the cluster
        verdict, and only every shard failing fails it outright.
        """
        policy = policy or HealthPolicy()
        own = HealthReport(component="cluster")
        if self._closed:
            own.degrade("failing", "cluster service is closed")
            return own
        counters = self.metrics.counters()
        error_rate_health(own, counters, policy)
        dispatcher_health(
            own,
            {"shard_failures": self.dispatcher.shard_failures,
             "shards_timed_out": self.dispatcher.shards_timed_out,
             "escalations": self.dispatcher.escalations},
            counters.get("requests", 0), policy)
        own.details["num_shards"] = self.num_shards
        own.details["worker_backend"] = self.config.worker_backend
        children = [replica_set.health(policy) for replica_set in self._shards]
        return rollup("cluster", children, own=own)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.dispatcher.close()
        for replica_set in self._shards:
            replica_set.close()
        if self._owned_checkpoint_dir is not None:
            shutil.rmtree(self._owned_checkpoint_dir, ignore_errors=True)
            self._owned_checkpoint_dir = None

    def __enter__(self) -> "ClusterRoutingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
