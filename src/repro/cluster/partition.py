"""Deterministic catalog partitioners.

A cluster serves a catalog split into shards, each shard owning a disjoint
subset of the databases.  Three strategies are provided:

* ``round_robin`` -- databases in catalog order, dealt card-style;
* ``size_balanced`` -- greedy bin packing by table count, so shard decode and
  cache load stay even when database sizes vary widely;
* ``joinability`` -- agglomerative grouping by schema affinity (Jaccard
  similarity of identifier-word signatures, reusing
  :func:`repro.schema.joinability.jaccard_similarity`), so databases that
  describe the same entities -- and therefore compete for the same questions --
  live on one shard and are ranked by one beam search.

Every strategy is a pure function of the catalog, so the same catalog always
produces the same :class:`ShardAssignment` (cluster restarts and replicas
agree without coordination).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.catalog import Catalog
from repro.schema.database import Database
from repro.schema.joinability import jaccard_similarity
from repro.utils.text import tokenize_text

PARTITION_STRATEGIES = ("round_robin", "size_balanced", "joinability")


@dataclass(frozen=True)
class ShardAssignment:
    """An immutable mapping of shard index -> owned database names."""

    shards: tuple[tuple[str, ...], ...]
    strategy: str = "round_robin"

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for databases in self.shards:
            for name in databases:
                if name in seen:
                    raise ValueError(f"database {name!r} assigned to multiple shards")
                seen.add(name)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def database_names(self) -> list[str]:
        return [name for databases in self.shards for name in databases]

    def shard_of(self, database: str) -> int:
        """The shard index owning ``database`` (KeyError when unassigned)."""
        for index, databases in enumerate(self.shards):
            if database in databases:
                return index
        raise KeyError(f"database {database!r} is not assigned to any shard")

    def replace_shard(self, shard_id: int, databases: tuple[str, ...]) -> "ShardAssignment":
        """A copy with one shard's database set swapped (rebalancing)."""
        shards = list(self.shards)
        shards[shard_id] = tuple(databases)
        return ShardAssignment(shards=tuple(shards), strategy=self.strategy)

    # -- persistence ---------------------------------------------------------
    def to_payload(self) -> dict:
        return {"strategy": self.strategy,
                "shards": [list(databases) for databases in self.shards]}

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardAssignment":
        return cls(shards=tuple(tuple(databases) for databases in payload["shards"]),
                   strategy=payload.get("strategy", "round_robin"))


def partition_catalog(catalog: Catalog, num_shards: int,
                      strategy: str = "size_balanced") -> ShardAssignment:
    """Partition ``catalog`` into ``num_shards`` disjoint database groups."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards > len(catalog):
        raise ValueError(f"cannot split {len(catalog)} databases into "
                         f"{num_shards} non-empty shards")
    if strategy == "round_robin":
        shards = _round_robin(catalog, num_shards)
    elif strategy == "size_balanced":
        shards = _size_balanced(catalog, num_shards)
    elif strategy == "joinability":
        shards = _joinability_grouped(catalog, num_shards)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"options: {', '.join(PARTITION_STRATEGIES)}")
    return ShardAssignment(shards=shards, strategy=strategy)


def _round_robin(catalog: Catalog, num_shards: int) -> tuple[tuple[str, ...], ...]:
    shards: list[list[str]] = [[] for _ in range(num_shards)]
    for index, database in enumerate(catalog):
        shards[index % num_shards].append(database.name)
    return tuple(tuple(databases) for databases in shards)


def _size_balanced(catalog: Catalog, num_shards: int) -> tuple[tuple[str, ...], ...]:
    """Greedy longest-processing-time packing by table count."""
    ordered = sorted(catalog, key=lambda db: (-db.num_tables, db.name))
    shards: list[list[str]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    for database in ordered:
        # Empty shards first (every shard must serve something), then the
        # lightest; ties go to the lowest index for determinism.
        target = min(range(num_shards),
                     key=lambda index: (len(shards[index]) > 0, loads[index], index))
        shards[target].append(database.name)
        loads[target] += database.num_tables
    order = {db.name: position for position, db in enumerate(catalog)}
    for databases in shards:
        databases.sort(key=order.__getitem__)
    return tuple(tuple(databases) for databases in shards)


def database_signature(database: Database) -> set[str]:
    """The identifier-word signature used for cross-database affinity."""
    words: set[str] = set()
    for table in database.tables:
        words.update(tokenize_text(table.name.replace("_", " ")))
        for column in table.columns:
            words.update(tokenize_text(column.name.replace("_", " ")))
    return words


def database_affinity(left: Database, right: Database) -> float:
    """Schema-level joinability proxy: Jaccard overlap of identifier words.

    Two databases generated from the same domain (or describing the same
    entities) share most of their table/column vocabulary, which is exactly
    when their tables are likely to be value-joinable and their questions
    ambiguous between them.
    """
    return jaccard_similarity(database_signature(left), database_signature(right))


def _joinability_grouped(catalog: Catalog, num_shards: int) -> tuple[tuple[str, ...], ...]:
    """Agglomerative single-linkage grouping: merge the most-affine group pair.

    Groups are capped at ``ceil(len(catalog) / num_shards)`` databases so the
    result stays balanced; merging continues until exactly ``num_shards``
    groups remain (falling back to merging the smallest groups when no
    affine pair fits under the cap).  Group affinities are maintained
    incrementally -- merging groups ``a`` and ``b`` sets
    ``affinity(a+b, k) = max(affinity(a, k), affinity(b, k))`` -- so each
    merge costs O(groups) instead of re-scanning every member pair.
    """
    databases = list(catalog)
    cap = -(-len(databases) // num_shards)
    groups: dict[int, list[str]] = {index: [database.name]
                                    for index, database in enumerate(databases)}
    # One signature per database (each tokenizes the full schema), jaccard'd
    # per pair -- not database_affinity(), which would rebuild both signatures
    # for every one of the O(n^2) pairs.
    signatures = [database_signature(database) for database in databases]
    affinity: dict[tuple[int, int], float] = {
        (i, j): jaccard_similarity(signatures[i], signatures[j])
        for i in range(len(databases))
        for j in range(i + 1, len(databases))
    }

    def aff(a: int, b: int) -> float:
        return affinity[(a, b) if a < b else (b, a)]

    while len(groups) > num_shards:
        ids = sorted(groups)
        best: tuple[float, str, str] | None = None
        best_pair: tuple[int, int] | None = None
        for position, a in enumerate(ids):
            for b in ids[position + 1:]:
                if len(groups[a]) + len(groups[b]) > cap:
                    continue
                key = (-aff(a, b), groups[a][0], groups[b][0])
                if best is None or key < best:
                    best, best_pair = key, (a, b)
        if best_pair is None:
            # No pair fits under the cap: merge the two smallest groups.
            ranked = sorted(ids, key=lambda group: (len(groups[group]),
                                                    groups[group][0]))
            best_pair = (min(ranked[:2]), max(ranked[:2]))
        a, b = best_pair
        for k in ids:
            if k not in (a, b):
                affinity[(a, k) if a < k else (k, a)] = max(aff(a, k), aff(b, k))
        groups[a].extend(groups[b])
        del groups[b]

    order = {database.name: position for position, database in enumerate(catalog)}
    merged = list(groups.values())
    for group in merged:
        group.sort(key=order.__getitem__)
    merged.sort(key=lambda group: order[group[0]])
    return tuple(tuple(group) for group in merged)
