"""The cluster wire protocol: length-prefixed, versioned JSON framing.

This is the boundary that lets a shard live in another process (or, later,
another host): the dispatcher side and the worker side exchange *frames* over
any pair of byte streams -- a subprocess's stdin/stdout pipes today, a TCP
socket tomorrow.  A frame is::

    +-------+------+----------------+----------------------+
    | magic | kind | payload length | payload (JSON bytes) |
    | 2 B   | 1 B  | 4 B big-endian | length bytes         |
    +-------+------+----------------+----------------------+

``magic`` (``b"RW"``) guards against a foreign stream, ``kind`` names the
payload encoding (only JSON today; the byte exists so a binary weight/tensor
encoding can be added without re-framing), and the length prefix bounds the
read.  The *protocol version* is not in the header: it is negotiated once per
connection by the ``hello``/``hello_ack`` handshake, so a version bump costs
one frame instead of four bytes per message.

Messages are plain dicts with a ``"type"`` key (see :data:`MESSAGE_TYPES`):
``route_request`` / ``route_batch_request`` -> ``route_response``,
``stats_request`` -> ``stats_response``, ``ping`` -> ``pong``,
``invalidate_cache`` -> ``ok``, ``shutdown`` -> ``shutdown_ack``, and
``error`` for request-scoped failures.  Requests carry a caller-chosen
``"id"`` that the response echoes.

Route lists cross the wire via :meth:`repro.core.router.SchemaRoute.to_payload`,
which carries scores as C99 hex floats -- bit-exact across serialization, so
:func:`repro.core.router.merge_route_lists` ranks identically whether the
candidates were decoded in-process or round-tripped through a worker.
"""

from __future__ import annotations

import json
import os
import selectors
import struct
import time
from typing import BinaryIO, Callable

from repro.cluster.dispatcher import ClusterError
from repro.core.router import SchemaRoute

#: Bump on message-shape changes; negotiated in the handshake.  Version 2
#: added the optional ``trace`` field on route requests (and ``spans`` on
#: their responses); version-1 peers are still accepted -- the fields are
#: simply never sent to (or expected from) them.
PROTOCOL_VERSION = 2

#: Oldest peer version this side still interoperates with.
MIN_PROTOCOL_VERSION = 1

#: First version that understands the ``trace`` / ``spans`` fields.
TRACE_PROTOCOL_VERSION = 2

FRAME_MAGIC = b"RW"
#: Payload encodings; only JSON for now (the byte reserves room for binary).
KIND_JSON = 0
FRAME_HEADER = struct.Struct(">2sBI")

#: Frames larger than this are refused on both sides (a 16 MiB batch of
#: routes is far beyond any real scatter wave; the cap bounds a corrupt or
#: hostile length prefix).
MAX_FRAME_BYTES = 16 << 20

#: Every message type either side may legitimately send.
MESSAGE_TYPES = frozenset({
    "hello", "hello_ack",
    "route_request", "route_batch_request", "route_response",
    "stats_request", "stats_response",
    "invalidate_cache", "ok",
    "ping", "pong",
    "shutdown", "shutdown_ack",
    "error",
    # Test-only: makes the worker die without replying (crash-path testing).
    "crash",
})


class ProtocolError(ClusterError):
    """The byte stream does not carry a well-formed protocol frame."""


class TruncatedFrameError(ProtocolError):
    """The stream ended in the middle of a frame header or payload."""


class FrameTooLargeError(ProtocolError):
    """A frame announced a payload above the size cap."""


class UnknownMessageError(ProtocolError):
    """A well-formed frame carried a message type this side does not know."""


class VersionMismatchError(ProtocolError):
    """The two endpoints speak different protocol versions."""


class TransportTimeoutError(ClusterError):
    """The peer did not produce a complete frame within the deadline."""


# -- encode --------------------------------------------------------------------
def encode_frame(message: dict, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message dict into a framed byte string."""
    message_type = message.get("type")
    if message_type not in MESSAGE_TYPES:
        raise UnknownMessageError(f"cannot encode unknown message type {message_type!r}")
    payload = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"{message_type} payload is {len(payload)} bytes "
            f"(cap {max_frame_bytes})")
    return FRAME_HEADER.pack(FRAME_MAGIC, KIND_JSON, len(payload)) + payload


def write_frame(stream: BinaryIO, message: dict,
                *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Frame ``message`` onto ``stream`` and flush it."""
    stream.write(encode_frame(message, max_frame_bytes=max_frame_bytes))
    stream.flush()


# -- decode --------------------------------------------------------------------
def validate_header(header: bytes, max_frame_bytes: int) -> tuple[int, int]:
    """Unpack + validate a frame header; returns ``(kind, payload length)``.

    The single authority on header well-formedness -- both readers and
    :func:`decode_payload` go through it, so a protocol change (say, a second
    payload kind) lands in exactly one place.
    """
    magic, kind, length = FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (stream is not the "
                            "cluster wire protocol)")
    if kind != KIND_JSON:
        raise ProtocolError(f"unsupported payload kind {kind}")
    if length > max_frame_bytes:
        raise FrameTooLargeError(f"frame announces {length} payload bytes "
                                 f"(cap {max_frame_bytes})")
    return kind, length


def decode_payload(header: bytes, payload: bytes,
                   *, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Decode a frame given its full header + payload."""
    _, length = validate_header(header, max_frame_bytes)
    if length != len(payload):
        raise TruncatedFrameError(f"frame announced {length} payload bytes but "
                                  f"carries {len(payload)}")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    if message.get("type") not in MESSAGE_TYPES:
        raise UnknownMessageError(f"unknown message type {message.get('type')!r}")
    return message


def read_frame(stream: BinaryIO,
               *, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from a blocking ``stream``.

    Returns ``None`` on a clean EOF *at a frame boundary* (the peer closed the
    connection); raises :class:`TruncatedFrameError` when the stream ends
    mid-frame.
    """
    header = _read_exact(stream, FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    _, length = validate_header(header, max_frame_bytes)
    payload = _read_exact(stream, length, allow_eof=False) if length else b""
    return decode_payload(header, payload, max_frame_bytes=max_frame_bytes)


def _read_exact(stream: BinaryIO, count: int, *, allow_eof: bool) -> bytes | None:
    data = b""
    while len(data) < count:
        chunk = stream.read(count - len(data))
        if not chunk:
            if allow_eof and not data:
                return None
            raise TruncatedFrameError(
                f"stream ended after {len(data)} of {count} expected bytes")
        data += chunk
    return data


class FrameReader:
    """Deadline-capable frame reader over a readable file descriptor.

    The dispatcher side reads worker replies through this: the fd is switched
    to non-blocking and each read waits on a selector, so a per-request
    timeout can fire even while a frame is partially received -- without
    abandoning a thread stuck in a blocking ``read()``.  (The worker side
    keeps the simple blocking :func:`read_frame`; it has nothing better to do
    than wait for its dispatcher.)
    """

    def __init__(self, stream: BinaryIO, *, max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._fd = stream.fileno()
        self._max_frame_bytes = max_frame_bytes
        self._clock = clock
        self._buffer = b""
        self._eof = False
        os.set_blocking(self._fd, False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._fd, selectors.EVENT_READ)

    def read(self, timeout_seconds: float | None = None) -> dict | None:
        """Read one frame; ``None`` on clean EOF at a frame boundary.

        Raises :class:`TransportTimeoutError` when a complete frame has not
        arrived within ``timeout_seconds`` (the partial bytes stay buffered,
        but callers are expected to kill the peer after a timeout).
        """
        deadline = None if timeout_seconds is None else self._clock() + timeout_seconds
        header = self._take(FRAME_HEADER.size, deadline, allow_eof=True)
        if header is None:
            return None
        _, length = validate_header(header, self._max_frame_bytes)
        payload = self._take(length, deadline, allow_eof=False) if length else b""
        return decode_payload(header, payload, max_frame_bytes=self._max_frame_bytes)

    def _take(self, count: int, deadline: float | None,
              *, allow_eof: bool) -> bytes | None:
        while len(self._buffer) < count:
            if self._eof:
                if allow_eof and not self._buffer:
                    return None
                raise TruncatedFrameError(
                    f"stream ended after {len(self._buffer)} of {count} expected bytes")
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._selector.select(remaining):
                    raise TransportTimeoutError(
                        f"no complete frame within the deadline "
                        f"({len(self._buffer)} of {count} bytes buffered)")
            else:
                self._selector.select()
            try:
                chunk = os.read(self._fd, 1 << 16)
            except BlockingIOError:  # spurious wakeup
                continue
            except OSError as error:
                raise TruncatedFrameError(f"read failed: {error}") from error
            if not chunk:
                self._eof = True
                continue
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def close(self) -> None:
        try:
            self._selector.unregister(self._fd)
        except (KeyError, ValueError):
            pass
        self._selector.close()


class FrameWriter:
    """Deadline-capable frame writer over a writable file descriptor.

    The dispatcher side sends requests through this: a worker that stops
    draining its stdin (SIGSTOP, swap-death) while a scatter wave larger than
    the OS pipe buffer is in flight would otherwise block ``write()`` forever
    *while holding the proxy's request lock*, wedging ``kill()``/``close()``
    with it.  The fd is switched to non-blocking and each chunk waits on a
    selector, so the per-request deadline covers the write half too.
    """

    def __init__(self, stream: BinaryIO, *, max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._fd = stream.fileno()
        self._max_frame_bytes = max_frame_bytes
        self._clock = clock
        os.set_blocking(self._fd, False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._fd, selectors.EVENT_WRITE)

    def write(self, message: dict, timeout_seconds: float | None = None) -> None:
        """Frame ``message`` onto the fd, raising
        :class:`TransportTimeoutError` when the peer does not drain it within
        ``timeout_seconds`` (the frame may then be half-sent -- callers are
        expected to kill the peer after a timeout)."""
        data = encode_frame(message, max_frame_bytes=self._max_frame_bytes)
        deadline = None if timeout_seconds is None else self._clock() + timeout_seconds
        while data:
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._selector.select(remaining):
                    raise TransportTimeoutError(
                        f"peer did not drain the frame within the deadline "
                        f"({len(data)} bytes unsent)")
            else:
                self._selector.select()
            try:
                sent = os.write(self._fd, data)
            except BlockingIOError:  # spurious wakeup
                continue
            data = data[sent:]

    def close(self) -> None:
        try:
            self._selector.unregister(self._fd)
        except (KeyError, ValueError):
            pass
        self._selector.close()


# -- handshake -----------------------------------------------------------------
def hello_message(shard_id: int, databases: tuple[str, ...] | list[str],
                  pid: int) -> dict:
    """The worker's opening frame: who it is and what it speaks."""
    return {"type": "hello", "protocol": PROTOCOL_VERSION, "shard_id": shard_id,
            "databases": list(databases), "pid": pid}


def check_protocol(message: dict) -> None:
    """Validate the negotiated version of a ``hello`` / ``hello_ack``.

    Any version in ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` is accepted:
    newer dispatchers keep driving older workers by suppressing the optional
    fields the old version does not know (see ``TRACE_PROTOCOL_VERSION``).
    """
    spoken = message.get("protocol")
    if not isinstance(spoken, int) or isinstance(spoken, bool) \
            or not MIN_PROTOCOL_VERSION <= spoken <= PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"peer speaks protocol {spoken!r}, this side speaks "
            f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}")


# -- route payloads ------------------------------------------------------------
def route_lists_to_payload(route_lists: list[list[SchemaRoute]]) -> list[list[dict]]:
    """Per-question route lists -> JSON-safe payload (bit-exact scores)."""
    return [[route.to_payload() for route in routes] for routes in route_lists]


def route_lists_from_payload(payload: list[list[dict]]) -> list[list[SchemaRoute]]:
    try:
        return [[SchemaRoute.from_payload(entry) for entry in routes]
                for routes in payload]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed route payload: {error}") from error


def error_message(request_id: object, error: BaseException) -> dict:
    """An error frame answering the request ``request_id``."""
    return {"type": "error", "id": request_id,
            "error": type(error).__name__, "message": str(error)}
