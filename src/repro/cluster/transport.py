"""The cluster wire protocol: length-prefixed, versioned JSON framing.

This is the boundary that lets a shard live in another process (or, later,
another host): the dispatcher side and the worker side exchange *frames* over
any pair of byte streams -- a subprocess's stdin/stdout pipes today, a TCP
socket tomorrow.  A frame is::

    +-------+------+----------------+---------------------------+
    | magic | kind | payload length | payload (`length` bytes)  |
    | 2 B   | 1 B  | 4 B big-endian |                           |
    +-------+------+----------------+---------------------------+

``magic`` (``b"RW"``) guards against a foreign stream, ``kind`` names the
payload encoding, and the length prefix bounds the read.  Kind 0 is a bare
JSON object.  Kind 1 (protocol 3) is a JSON header followed by one opaque
binary segment::

    +----------------+--------------------+--------------------------+
    | JSON length    | JSON header bytes  | binary segment           |
    | 4 B big-endian |                    | payload minus the header |
    +----------------+--------------------+--------------------------+

The *protocol version* is not in the header: it is negotiated once per
connection by the ``hello``/``hello_ack`` handshake, so a version bump costs
one frame instead of four bytes per message.

Messages are plain dicts with a ``"type"`` key (see :data:`MESSAGE_TYPES`):
``route_request`` / ``route_batch_request`` -> ``route_response``,
``stats_request`` -> ``stats_response``, ``ping`` -> ``pong``,
``invalidate_cache`` -> ``ok``, ``shutdown`` -> ``shutdown_ack``, and
``error`` for request-scoped failures.  Requests carry a caller-chosen
``"id"`` that the response echoes; since protocol 3 the id is a real
correlation id -- responses may return out of order and are demultiplexed by
it (see :mod:`repro.cluster.procworker`).

Route lists cross the wire in one of two bit-exact forms.  Protocol <= 2
peers exchange :meth:`repro.core.router.SchemaRoute.to_payload` dicts, whose
scores are C99 hex floats.  Protocol 3 peers put the scores and identifier
token sequences in the binary segment as raw little-endian float64 / int32
arrays (:func:`route_lists_to_binary`) -- the ``np.tobytes`` round trip
preserves every bit, same guarantee the hex floats bought, at a fraction of
the encode/decode cost.  Either way
:func:`repro.core.router.merge_route_lists` ranks identically whether the
candidates were decoded in-process or round-tripped through a worker.
"""

from __future__ import annotations

import json
import os
import selectors
import struct
import time
from typing import BinaryIO, Callable

import numpy as np

from repro.cluster.dispatcher import ClusterError
from repro.core.router import SchemaRoute

#: Bump on message-shape changes; negotiated in the handshake.  Version 2
#: added the optional ``trace`` field on route requests (and ``spans`` on
#: their responses).  Version 3 made frame ids real correlation ids
#: (responses may return out of order) and added the kind-1 binary payload
#: segment for route scores.  Older peers are still accepted -- the optional
#: fields and the binary form are simply never sent to (or expected from)
#: them.
PROTOCOL_VERSION = 3

#: Oldest peer version this side still interoperates with.
MIN_PROTOCOL_VERSION = 1

#: First version that understands the ``trace`` / ``spans`` fields.
TRACE_PROTOCOL_VERSION = 2

#: First version that understands kind-1 frames (binary route payloads) and
#: out-of-order responses.
BINARY_PROTOCOL_VERSION = 3

FRAME_MAGIC = b"RW"
#: Payload encodings: bare JSON, or a JSON header + opaque binary segment.
KIND_JSON = 0
KIND_JSON_BINARY = 1
FRAME_HEADER = struct.Struct(">2sBI")
#: The kind-1 intra-payload prefix: length of the JSON header.
BINARY_HEADER = struct.Struct(">I")

#: Key under which a decoded frame carries its binary segment (and senders
#: may attach one).  Underscored so it can never collide with a JSON field:
#: the segment is framing, not part of the message.
BINARY_KEY = "_binary"

#: Message types whose JSON is encoded with sorted keys.  Handshake frames
#: stay byte-deterministic (they get logged, diffed, and asserted on);
#: hot-path route frames skip the sort -- it costs a per-key comparison pass
#: on every frame and nothing reads route frames as raw bytes.  Protocol-2
#: exchanges are the exception: the pre-multiplexing transport canonicalized
#: *every* frame, so both sides pass ``canonical=True`` when the negotiated
#: protocol predates :data:`BINARY_PROTOCOL_VERSION` -- a protocol-2
#: conversation stays byte-identical to what the old implementation put on
#: the wire.
DETERMINISTIC_TYPES = frozenset({"hello", "hello_ack"})

#: Frames larger than this are refused on both sides (a 16 MiB batch of
#: routes is far beyond any real scatter wave; the cap bounds a corrupt or
#: hostile length prefix).
MAX_FRAME_BYTES = 16 << 20

#: Every message type either side may legitimately send.
MESSAGE_TYPES = frozenset({
    "hello", "hello_ack",
    "route_request", "route_batch_request", "route_response",
    "stats_request", "stats_response",
    "invalidate_cache", "ok",
    "ping", "pong",
    "shutdown", "shutdown_ack",
    "error",
    # Test-only: makes the worker die without replying (crash-path testing).
    "crash",
})


class ProtocolError(ClusterError):
    """The byte stream does not carry a well-formed protocol frame."""


class TruncatedFrameError(ProtocolError):
    """The stream ended in the middle of a frame header or payload."""


class FrameTooLargeError(ProtocolError):
    """A frame announced a payload above the size cap."""


class UnknownMessageError(ProtocolError):
    """A well-formed frame carried a message type this side does not know."""


class VersionMismatchError(ProtocolError):
    """The two endpoints speak different protocol versions."""


class TransportTimeoutError(ClusterError):
    """The peer did not produce a complete frame within the deadline."""


# -- encode --------------------------------------------------------------------
def encode_frame(message: dict, *, binary: bytes | None = None,
                 canonical: bool = False,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message dict (plus an optional binary segment) into a
    framed byte string.  A non-None ``binary`` produces a kind-1 frame; only
    send those to peers that negotiated ``BINARY_PROTOCOL_VERSION``.
    ``canonical=True`` sorts keys on every frame -- the legacy byte form
    protocol-2 peers produced (see :data:`DETERMINISTIC_TYPES`)."""
    message_type = message.get("type")
    if message_type not in MESSAGE_TYPES:
        raise UnknownMessageError(f"cannot encode unknown message type {message_type!r}")
    if BINARY_KEY in message:
        raise ProtocolError(f"message key {BINARY_KEY!r} is reserved for "
                            "decoded binary segments; pass binary= instead")
    header = json.dumps(message, separators=(",", ":"),
                        sort_keys=canonical
                        or message_type in DETERMINISTIC_TYPES).encode("utf-8")
    if binary is None:
        payload_length = len(header)
        if payload_length > max_frame_bytes:
            raise FrameTooLargeError(
                f"{message_type} payload is {payload_length} bytes "
                f"(cap {max_frame_bytes})")
        return FRAME_HEADER.pack(FRAME_MAGIC, KIND_JSON, payload_length) + header
    payload_length = BINARY_HEADER.size + len(header) + len(binary)
    if payload_length > max_frame_bytes:
        raise FrameTooLargeError(
            f"{message_type} payload is {payload_length} bytes "
            f"(cap {max_frame_bytes})")
    return b"".join((FRAME_HEADER.pack(FRAME_MAGIC, KIND_JSON_BINARY, payload_length),
                     BINARY_HEADER.pack(len(header)), header, binary))


def write_frame(stream: BinaryIO, message: dict, *, binary: bytes | None = None,
                canonical: bool = False,
                max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Frame ``message`` onto ``stream`` and flush it."""
    stream.write(encode_frame(message, binary=binary, canonical=canonical,
                              max_frame_bytes=max_frame_bytes))
    stream.flush()


# -- decode --------------------------------------------------------------------
def validate_header(header: bytes, max_frame_bytes: int) -> tuple[int, int]:
    """Unpack + validate a frame header; returns ``(kind, payload length)``.

    The single authority on header well-formedness -- both readers and
    :func:`decode_payload` go through it, so a protocol change (say, a second
    payload kind) lands in exactly one place.
    """
    magic, kind, length = FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (stream is not the "
                            "cluster wire protocol)")
    if kind not in (KIND_JSON, KIND_JSON_BINARY):
        raise ProtocolError(f"unsupported payload kind {kind}")
    if length > max_frame_bytes:
        raise FrameTooLargeError(f"frame announces {length} payload bytes "
                                 f"(cap {max_frame_bytes})")
    return kind, length


def decode_payload(header: bytes, payload: bytes,
                   *, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Decode a frame given its full header + payload.

    A kind-1 frame's binary segment is attached to the returned message
    under :data:`BINARY_KEY`; a kind-0 frame never carries that key.
    """
    kind, length = validate_header(header, max_frame_bytes)
    if length != len(payload):
        raise TruncatedFrameError(f"frame announced {length} payload bytes but "
                                  f"carries {len(payload)}")
    binary = None
    if kind == KIND_JSON_BINARY:
        if length < BINARY_HEADER.size:
            raise TruncatedFrameError(
                f"kind-1 frame of {length} bytes cannot hold its JSON-length "
                f"prefix ({BINARY_HEADER.size} bytes)")
        (json_length,) = BINARY_HEADER.unpack_from(payload)
        if BINARY_HEADER.size + json_length > length:
            raise TruncatedFrameError(
                f"kind-1 frame announces a {json_length}-byte JSON header but "
                f"only carries {length - BINARY_HEADER.size} payload bytes")
        binary = payload[BINARY_HEADER.size + json_length:]
        payload = payload[BINARY_HEADER.size:BINARY_HEADER.size + json_length]
    try:
        # json.loads accepts UTF-8 bytes directly: no intermediate str copy.
        message = json.loads(payload)
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    if message.get("type") not in MESSAGE_TYPES:
        raise UnknownMessageError(f"unknown message type {message.get('type')!r}")
    if binary is not None:
        message[BINARY_KEY] = binary
    return message


def read_frame(stream: BinaryIO,
               *, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from a blocking ``stream``.

    Returns ``None`` on a clean EOF *at a frame boundary* (the peer closed the
    connection); raises :class:`TruncatedFrameError` when the stream ends
    mid-frame.
    """
    header = _read_exact(stream, FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    _, length = validate_header(header, max_frame_bytes)
    payload = _read_exact(stream, length, allow_eof=False) if length else b""
    return decode_payload(header, payload, max_frame_bytes=max_frame_bytes)


def _read_exact(stream: BinaryIO, count: int, *, allow_eof: bool) -> bytes | None:
    data = b""
    while len(data) < count:
        chunk = stream.read(count - len(data))
        if not chunk:
            if allow_eof and not data:
                return None
            raise TruncatedFrameError(
                f"stream ended after {len(data)} of {count} expected bytes")
        data += chunk
    return data


class FrameReader:
    """Deadline-capable frame reader over a readable file descriptor.

    The dispatcher side reads worker replies through this: the fd is switched
    to non-blocking and each read waits on a selector, so a per-request
    timeout can fire even while a frame is partially received -- without
    abandoning a thread stuck in a blocking ``read()``.  (The worker side
    keeps the simple blocking :func:`read_frame`; it has nothing better to do
    than wait for its dispatcher.)
    """

    def __init__(self, stream: BinaryIO, *, max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._fd = stream.fileno()
        self._max_frame_bytes = max_frame_bytes
        self._clock = clock
        self._buffer = b""
        self._eof = False
        #: Total payload+header bytes consumed off the stream (transport
        #: accounting: the dispatcher side surfaces bytes/route in stats).
        self.bytes_read = 0
        os.set_blocking(self._fd, False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._fd, selectors.EVENT_READ)

    def read(self, timeout_seconds: float | None = None) -> dict | None:
        """Read one frame; ``None`` on clean EOF at a frame boundary.

        Raises :class:`TransportTimeoutError` when a complete frame has not
        arrived within ``timeout_seconds`` (the partial bytes stay buffered,
        but callers are expected to kill the peer after a timeout).
        """
        deadline = None if timeout_seconds is None else self._clock() + timeout_seconds
        header = self._take(FRAME_HEADER.size, deadline, allow_eof=True)
        if header is None:
            return None
        _, length = validate_header(header, self._max_frame_bytes)
        payload = self._take(length, deadline, allow_eof=False) if length else b""
        return decode_payload(header, payload, max_frame_bytes=self._max_frame_bytes)

    def _take(self, count: int, deadline: float | None,
              *, allow_eof: bool) -> bytes | None:
        while len(self._buffer) < count:
            if self._eof:
                if allow_eof and not self._buffer:
                    return None
                raise TruncatedFrameError(
                    f"stream ended after {len(self._buffer)} of {count} expected bytes")
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._selector.select(remaining):
                    raise TransportTimeoutError(
                        f"no complete frame within the deadline "
                        f"({len(self._buffer)} of {count} bytes buffered)")
            else:
                self._selector.select()
            try:
                chunk = os.read(self._fd, 1 << 16)
            except BlockingIOError:  # spurious wakeup
                continue
            except OSError as error:
                raise TruncatedFrameError(f"read failed: {error}") from error
            if not chunk:
                self._eof = True
                continue
            self._buffer += chunk
            self.bytes_read += len(chunk)
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def close(self) -> None:
        try:
            self._selector.unregister(self._fd)
        except (KeyError, ValueError):
            pass
        self._selector.close()


class FrameWriter:
    """Deadline-capable frame writer over a writable file descriptor.

    The dispatcher side sends requests through this: a worker that stops
    draining its stdin (SIGSTOP, swap-death) while a scatter wave larger than
    the OS pipe buffer is in flight would otherwise block ``write()`` forever
    *while holding the proxy's request lock*, wedging ``kill()``/``close()``
    with it.  The fd is switched to non-blocking and each chunk waits on a
    selector, so the per-request deadline covers the write half too.
    """

    def __init__(self, stream: BinaryIO, *, max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._fd = stream.fileno()
        self._max_frame_bytes = max_frame_bytes
        self._clock = clock
        #: Total frame bytes pushed onto the stream (transport accounting).
        self.bytes_written = 0
        os.set_blocking(self._fd, False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._fd, selectors.EVENT_WRITE)

    def write(self, message: dict, *, binary: bytes | None = None,
              canonical: bool = False,
              timeout_seconds: float | None = None) -> None:
        """Frame ``message`` onto the fd, raising
        :class:`TransportTimeoutError` when the peer does not drain it within
        ``timeout_seconds`` (the frame may then be half-sent -- callers are
        expected to kill the peer after a timeout)."""
        data = encode_frame(message, binary=binary, canonical=canonical,
                            max_frame_bytes=self._max_frame_bytes)
        self.bytes_written += len(data)
        deadline = None if timeout_seconds is None else self._clock() + timeout_seconds
        while data:
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._selector.select(remaining):
                    raise TransportTimeoutError(
                        f"peer did not drain the frame within the deadline "
                        f"({len(data)} bytes unsent)")
            else:
                self._selector.select()
            try:
                sent = os.write(self._fd, data)
            except BlockingIOError:  # spurious wakeup
                continue
            data = data[sent:]

    def close(self) -> None:
        try:
            self._selector.unregister(self._fd)
        except (KeyError, ValueError):
            pass
        self._selector.close()


# -- handshake -----------------------------------------------------------------
def hello_message(shard_id: int, databases: tuple[str, ...] | list[str],
                  pid: int) -> dict:
    """The worker's opening frame: who it is and what it speaks."""
    return {"type": "hello", "protocol": PROTOCOL_VERSION, "shard_id": shard_id,
            "databases": list(databases), "pid": pid}


def check_protocol(message: dict) -> None:
    """Validate the negotiated version of a ``hello`` / ``hello_ack``.

    Any version in ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` is accepted:
    newer dispatchers keep driving older workers by suppressing the optional
    fields the old version does not know (see ``TRACE_PROTOCOL_VERSION``).
    """
    spoken = message.get("protocol")
    if not isinstance(spoken, int) or isinstance(spoken, bool) \
            or not MIN_PROTOCOL_VERSION <= spoken <= PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"peer speaks protocol {spoken!r}, this side speaks "
            f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}")


# -- route payloads ------------------------------------------------------------
def route_lists_to_payload(route_lists: list[list[SchemaRoute]]) -> list[list[dict]]:
    """Per-question route lists -> JSON-safe payload (bit-exact scores)."""
    return [[route.to_payload() for route in routes] for routes in route_lists]


def route_lists_from_payload(payload: list[list[dict]]) -> list[list[SchemaRoute]]:
    try:
        return [[SchemaRoute.from_payload(entry) for entry in routes]
                for routes in payload]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed route payload: {error}") from error


# The protocol-3 binary route form.  Scores travel as raw little-endian IEEE
# 754 doubles (``np.tobytes`` / ``np.frombuffer`` round-trips every bit, the
# same guarantee the hex floats bought) and identifier names travel once, in
# an interned string table, with each route a short int32 index sequence --
# no per-route dicts, no float formatting, no hex parsing.
#
# Segment layout (all little-endian, in this order)::
#
#     counts   : int32[questions]   routes per question
#     scores   : float64[routes]    raw route scores
#     seq_lens : int32[routes]      identifiers per route (1 + len(tables))
#     tokens   : int32[total]       string-table indices: database, tables...
#
# The JSON side of the frame carries the descriptor: the three array lengths
# plus the string table, so the segment size is fully determined before a
# single byte of it is trusted.
#
# Segments at or below this many routes take a ``struct`` fast path on both
# ends: ``struct.pack``/``unpack_from`` produce byte-identical little-endian
# IEEE 754 output but skip numpy's fixed per-array overhead, which at the
# typical reply size (a few dozen routes) costs more than the payload itself.
# Larger segments amortize that overhead and go through numpy.
SMALL_SEGMENT_ROUTES = 512


def route_lists_to_binary(
        route_lists: list[list[SchemaRoute]]) -> tuple[dict, bytes]:
    """Per-question route lists -> ``(descriptor, binary segment)``."""
    strings: list[str] = []
    interned: dict[str, int] = {}

    def intern(name: str) -> int:
        slot = interned.get(name)
        if slot is None:
            slot = interned[name] = len(strings)
            strings.append(name)
        return slot

    counts = []
    scores = []
    seq_lens = []
    tokens = []
    for routes in route_lists:
        counts.append(len(routes))
        for route in routes:
            scores.append(route.score)
            seq_lens.append(1 + len(route.tables))
            tokens.append(intern(route.database))
            tokens.extend(intern(table) for table in route.tables)
    if len(scores) <= SMALL_SEGMENT_ROUTES:
        segment = b"".join((
            struct.pack(f"<{len(counts)}i", *counts),
            struct.pack(f"<{len(scores)}d", *scores),
            struct.pack(f"<{len(seq_lens)}i", *seq_lens),
            struct.pack(f"<{len(tokens)}i", *tokens),
        ))
    else:
        segment = b"".join((
            np.asarray(counts, dtype="<i4").tobytes(),
            np.asarray(scores, dtype="<f8").tobytes(),
            np.asarray(seq_lens, dtype="<i4").tobytes(),
            np.asarray(tokens, dtype="<i4").tobytes(),
        ))
    descriptor = {"questions": len(counts), "routes": len(scores),
                  "tokens": len(tokens), "strings": strings}
    return descriptor, segment


def route_lists_from_binary(descriptor: dict,
                            segment: bytes) -> list[list[SchemaRoute]]:
    """Decode the binary route form; :class:`ProtocolError` on any mismatch
    between the descriptor and the segment (sizes, counts, table indices)."""
    try:
        questions = int(descriptor["questions"])
        routes = int(descriptor["routes"])
        tokens = int(descriptor["tokens"])
        strings = descriptor["strings"]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed binary route descriptor: {error}") from error
    if not isinstance(strings, list) \
            or min(questions, routes, tokens, 0) < 0:
        raise ProtocolError("malformed binary route descriptor")
    expected = 4 * questions + 8 * routes + 4 * routes + 4 * tokens
    if len(segment) != expected:
        raise ProtocolError(
            f"binary route segment is {len(segment)} bytes, descriptor "
            f"implies {expected}")
    # Both branches end at the same plain-Python sequences: indexing numpy
    # scalars is ~10x the cost of list indexing, and ``struct.unpack_from`` /
    # ``.tolist()`` of a float64 buffer both yield the exact same 64-bit
    # doubles (this loop is the decode hot path of every route_response
    # frame).  Small segments skip numpy entirely -- its fixed per-array
    # overhead dwarfs a few-dozen-route payload.
    if routes <= SMALL_SEGMENT_ROUTES:
        offset = 0
        count_list = struct.unpack_from(f"<{questions}i", segment, offset)
        offset += 4 * questions
        score_list = struct.unpack_from(f"<{routes}d", segment, offset)
        offset += 8 * routes
        length_list = struct.unpack_from(f"<{routes}i", segment, offset)
        offset += 4 * routes
        token_list = struct.unpack_from(f"<{tokens}i", segment, offset)
        if sum(count_list) != routes or (count_list and min(count_list) < 0):
            raise ProtocolError("binary route counts do not sum to the route total")
        if sum(length_list) != tokens or (length_list and min(length_list) < 1):
            raise ProtocolError(
                "binary route sequences do not sum to the token total")
        if token_list and (min(token_list) < 0
                           or max(token_list) >= len(strings)):
            raise ProtocolError("binary route token outside the string table")
    else:
        offset = 0
        counts = np.frombuffer(segment, dtype="<i4", count=questions, offset=offset)
        offset += 4 * questions
        scores = np.frombuffer(segment, dtype="<f8", count=routes, offset=offset)
        offset += 8 * routes
        seq_lens = np.frombuffer(segment, dtype="<i4", count=routes, offset=offset)
        offset += 4 * routes
        table_ids = np.frombuffer(segment, dtype="<i4", count=tokens, offset=offset)
        if int(counts.sum()) != routes or (counts < 0).any():
            raise ProtocolError("binary route counts do not sum to the route total")
        if int(seq_lens.sum()) != tokens or (seq_lens < 1).any():
            raise ProtocolError(
                "binary route sequences do not sum to the token total")
        if tokens and (int(table_ids.min()) < 0
                       or int(table_ids.max()) >= len(strings)):
            raise ProtocolError("binary route token outside the string table")
        count_list = counts.tolist()
        score_list = scores.tolist()
        length_list = seq_lens.tolist()
        token_list = table_ids.tolist()
    try:
        names = [str(name) for name in strings]
    except ValueError as error:  # pragma: no cover - str() rarely fails
        raise ProtocolError(f"malformed string table: {error}") from error
    route_lists: list[list[SchemaRoute]] = []
    cursor = 0
    token_cursor = 0
    for count in count_list:
        decoded = []
        for index in range(cursor, cursor + count):
            length = length_list[index]
            sequence = token_list[token_cursor:token_cursor + length]
            token_cursor += length
            decoded.append(SchemaRoute(
                database=names[sequence[0]],
                tables=tuple(names[token] for token in sequence[1:]),
                score=score_list[index]))
        cursor += count
        route_lists.append(decoded)
    return route_lists


def error_message(request_id: object, error: BaseException) -> dict:
    """An error frame answering the request ``request_id``."""
    return {"type": "error", "id": request_id,
            "error": type(error).__name__, "message": str(error)}
