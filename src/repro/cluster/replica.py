"""N-way shard replication with round-robin selection and failover.

A :class:`ReplicaSet` fronts several interchangeable :class:`ShardWorker`
replicas of one shard.  Requests rotate round-robin across healthy replicas;
when a replica raises or exceeds the per-attempt timeout it is quarantined for
``quarantine_seconds`` and the request fails over to the next replica.
Quarantined replicas are retried automatically once their quarantine expires
(and, as a last resort, when every replica is quarantined the one whose
quarantine expires soonest is tried anyway -- serving degraded beats serving
nothing).

The clock is injectable so quarantine expiry is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.router import SchemaRoute
from repro.cluster.dispatcher import ClusterError, ShardTimeoutError, call_with_timeout
from repro.cluster.shard import ShardWorker


@dataclass
class _ReplicaState:
    """Bookkeeping for one replica."""

    worker: ShardWorker
    failures: int = 0
    successes: int = 0
    quarantined_until: float = field(default=0.0)

    def healthy(self, now: float) -> bool:
        return now >= self.quarantined_until


class ReplicaSet:
    """Round-robin + failover over the replicas of one shard."""

    def __init__(self, shard_id: int, workers: Sequence[ShardWorker],
                 quarantine_seconds: float = 30.0,
                 attempt_timeout_seconds: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not workers:
            raise ValueError("a replica set needs at least one worker")
        if quarantine_seconds < 0:
            raise ValueError("quarantine_seconds must be non-negative")
        self.shard_id = shard_id
        self.quarantine_seconds = quarantine_seconds
        self.attempt_timeout_seconds = attempt_timeout_seconds
        self._clock = clock
        self._replicas = [_ReplicaState(worker=worker) for worker in workers]
        self._rotation = 0
        self._lock = threading.Lock()
        self.failovers = 0

    # -- introspection -------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    @property
    def workers(self) -> list[ShardWorker]:
        return [replica.worker for replica in self._replicas]

    @property
    def databases(self) -> tuple[str, ...]:
        return self._replicas[0].worker.databases

    def healthy_count(self) -> int:
        now = self._clock()
        return sum(1 for replica in self._replicas if replica.healthy(now))

    # -- selection -----------------------------------------------------------
    def _attempt_order(self) -> list[_ReplicaState]:
        """Healthy replicas in round-robin order, then quarantined ones by
        soonest expiry (the periodic-retry / last-resort path)."""
        with self._lock:
            start = self._rotation
            self._rotation += 1
        now = self._clock()
        rotated = [self._replicas[(start + offset) % len(self._replicas)]
                   for offset in range(len(self._replicas))]
        healthy = [replica for replica in rotated if replica.healthy(now)]
        quarantined = sorted((replica for replica in rotated if not replica.healthy(now)),
                             key=lambda replica: replica.quarantined_until)
        return healthy + quarantined

    # -- request path --------------------------------------------------------
    def route_batch(self, questions: Sequence[str],
                    max_candidates: int | None = None,
                    careful: bool = False,
                    trace=None) -> list[list[SchemaRoute]]:
        """Route through the first replica that answers; quarantine failures."""
        attempts = self._attempt_order()
        last_error: BaseException | None = None
        all_timed_out = True
        for position, replica in enumerate(attempts):
            try:
                result = call_with_timeout(
                    replica.worker.route_batch,
                    (list(questions), max_candidates, careful),
                    self.attempt_timeout_seconds,
                    f"shard-{self.shard_id}-replica",
                    kwargs={"trace": trace} if trace is not None else None,
                )
            except Exception as error:
                last_error = error
                all_timed_out = all_timed_out and isinstance(error, ShardTimeoutError)
                with self._lock:
                    replica.failures += 1
                    replica.quarantined_until = self._clock() + self.quarantine_seconds
                    if position + 1 < len(attempts):
                        self.failovers += 1
                continue
            with self._lock:
                replica.successes += 1
                replica.quarantined_until = 0.0
            return result
        # Preserve the failure class through the replica layer: when every
        # replica timed out the dispatcher should count a shard *timeout*
        # (``shards_timed_out``), not a generic failure.
        error_class = ShardTimeoutError if all_timed_out else ClusterError
        raise error_class(
            f"all {len(attempts)} replicas of shard {self.shard_id} failed"
        ) from last_error

    # -- rebalance / lifecycle ----------------------------------------------
    def set_databases(self, databases: tuple[str, ...], master) -> None:
        """Re-project every replica onto a new database set (rebalancing)."""
        for replica in self._replicas:
            replica.worker.set_databases(databases, master)

    def notify_catalog_changed(self) -> None:
        for replica in self._replicas:
            replica.worker.notify_catalog_changed()

    def health(self, policy=None):
        """Quarantine fraction plus every replica worker's own verdict.

        Some replicas quarantined means the shard serves with reduced
        redundancy (``degraded``); all quarantined means requests only
        succeed through the last-resort retry path (``failing``)."""
        from repro.obs.health import HealthReport, rollup

        own = HealthReport(component=f"shard-{self.shard_id}")
        now = self._clock()
        quarantined = sum(1 for replica in self._replicas
                          if not replica.healthy(now))
        own.details.update(num_replicas=len(self._replicas),
                           quarantined=quarantined,
                           failovers=self.failovers)
        if quarantined == len(self._replicas):
            own.degrade("failing", f"all {quarantined} replicas quarantined")
        elif quarantined:
            own.degrade("degraded",
                        f"{quarantined} of {len(self._replicas)} replicas "
                        f"quarantined")
        children = [replica.worker.health(policy)
                    for replica in self._replicas
                    if hasattr(replica.worker, "health")]
        return rollup(f"shard-{self.shard_id}", children, own=own)

    def stats(self) -> dict:
        now = self._clock()
        return {
            "shard_id": self.shard_id,
            "num_replicas": len(self._replicas),
            "healthy_replicas": self.healthy_count(),
            "failovers": self.failovers,
            "replicas": [
                {
                    "successes": replica.successes,
                    "failures": replica.failures,
                    "quarantined": not replica.healthy(now),
                }
                for replica in self._replicas
            ],
        }

    def close(self) -> None:
        for replica in self._replicas:
            replica.worker.close()
