"""Cluster subsystem: sharded scatter-gather routing over partitioned catalogs.

PR 1 made the router a persistent, cached, micro-batched *service*; this
package makes it a *cluster*.  The catalog is partitioned into shards
(round-robin, size-balanced, or joinability-aware grouping); each shard runs a
projection of the trained router -- same model, sub-graph constraint, reduced
beam budget -- behind its own :class:`repro.serving.RoutingService` with an
independent cache and metrics; a dispatcher scatter-gathers every request
across the shards and merges the candidates into one deterministic top-k:

* :mod:`repro.cluster.partition` -- deterministic catalog partitioners and the
  :class:`ShardAssignment` layout;
* :mod:`repro.cluster.shard` -- router projection and the per-shard worker;
* :mod:`repro.cluster.dispatcher` -- thread-pool scatter-gather with
  per-shard timeouts and deterministic score-merged top-k;
* :mod:`repro.cluster.replica` -- N-way replication, round-robin selection,
  failover with quarantine;
* :mod:`repro.cluster.rebalance` -- live add/remove/move of databases with
  single-shard cache invalidation;
* :mod:`repro.cluster.wave` -- dense wave decode: the whole inproc fleet's
  beams stacked into one slot-dense kernel stream per step, with per-shard
  vocabulary slices and constraint masks intact;
* :mod:`repro.cluster.service` -- :class:`ClusterRoutingService`, the façade
  mirroring the PR-1 ``RoutingService`` API plus cluster-wide metrics;
* :mod:`repro.cluster.checkpoint` -- whole-cluster save/load (shard manifest
  + per-shard router checkpoints) for identical restarts;
* :mod:`repro.cluster.transport` -- the length-prefixed, versioned JSON wire
  protocol (``hello`` handshake, route/stats/shutdown/error frames) that lets
  a shard live outside this process;
* :mod:`repro.cluster.procworker` -- multi-process shard workers: the
  ``python -m repro.cluster.procworker`` child loop and the
  :class:`ProcShardWorker` proxy with spawn / health-check / kill-and-respawn
  lifecycle management (select with ``ClusterConfig(worker_backend="subprocess")``).
"""

from repro.cluster.checkpoint import (
    CLUSTER_FORMAT,
    CLUSTER_VERSION,
    load_cluster,
    load_cluster_manifest,
    save_cluster,
)
from repro.cluster.dispatcher import (
    ClusterDispatcher,
    ClusterError,
    ShardTimeoutError,
)
from repro.cluster.partition import (
    PARTITION_STRATEGIES,
    ShardAssignment,
    database_affinity,
    partition_catalog,
)
from repro.cluster.rebalance import ClusterRebalancer, RebalanceError
from repro.cluster.replica import ReplicaSet
from repro.cluster.service import WORKER_BACKENDS, ClusterConfig, ClusterRoutingService
from repro.cluster.shard import ShardWorker, project_router, slice_target_vocabulary
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    TRACE_PROTOCOL_VERSION,
    FrameReader,
    FrameTooLargeError,
    FrameWriter,
    ProtocolError,
    TransportTimeoutError,
    TruncatedFrameError,
    UnknownMessageError,
    VersionMismatchError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cluster.wave import ClusterWaveEngine

# Lazy (PEP 562): the worker child process runs ``python -m
# repro.cluster.procworker``, and an eager import here would mean runpy
# re-executes a module that the package import already created (the
# "found in sys.modules" RuntimeWarning on every spawn).
_PROCWORKER_EXPORTS = ("ProcShardWorker", "WorkerCrashedError", "WorkerError")


def __getattr__(name: str):
    if name in _PROCWORKER_EXPORTS:
        from repro.cluster import procworker

        return getattr(procworker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CLUSTER_FORMAT",
    "CLUSTER_VERSION",
    "load_cluster",
    "load_cluster_manifest",
    "save_cluster",
    "ClusterDispatcher",
    "ClusterError",
    "ShardTimeoutError",
    "PARTITION_STRATEGIES",
    "ShardAssignment",
    "database_affinity",
    "partition_catalog",
    "ClusterRebalancer",
    "RebalanceError",
    "ReplicaSet",
    "ClusterConfig",
    "ClusterRoutingService",
    "ShardWorker",
    "project_router",
    "slice_target_vocabulary",
    "ClusterWaveEngine",
    "ProcShardWorker",
    "WorkerCrashedError",
    "WorkerError",
    "WORKER_BACKENDS",
    "MAX_FRAME_BYTES",
    "MIN_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "TRACE_PROTOCOL_VERSION",
    "FrameReader",
    "FrameTooLargeError",
    "FrameWriter",
    "ProtocolError",
    "TransportTimeoutError",
    "TruncatedFrameError",
    "UnknownMessageError",
    "VersionMismatchError",
    "encode_frame",
    "read_frame",
    "write_frame",
]
