"""Scatter-gather dispatch across shard targets.

The dispatcher fans one ``route_batch`` call out to every shard on a thread
pool, gathers the per-shard candidate lists (optionally under a per-shard
timeout), and merges them into one deterministic top-k per question with
:func:`repro.core.router.merge_route_lists`.  Because every shard scores with
the same underlying model, pooled softmax normalization keeps the merged
ranking identical to what a monolithic router would prefer, and the
``(-score, database, tables)`` sort makes the result independent of shard
gather order.

Targets are plain callables (``route_batch(questions, max_candidates) ->
per-question route lists``), so the dispatcher works equally over
:class:`repro.cluster.shard.ShardWorker`, a
:class:`repro.cluster.replica.ReplicaSet`, or a test stub.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.core.router import SchemaRoute, merge_route_lists
from repro.obs.trace import maybe_span

#: A shard target: ``(questions, max_candidates) -> list of per-question routes``.
ShardTarget = Callable[[Sequence[str], "int | None"], "list[list[SchemaRoute]]"]


class ClusterError(RuntimeError):
    """A shard (or all replicas of a shard) failed to answer."""


class ShardTimeoutError(ClusterError):
    """A shard did not answer within its timeout."""


def call_with_timeout(target: Callable, args: tuple, timeout_seconds: float | None,
                      label: str = "shard", kwargs: dict | None = None):
    """Run ``target(*args, **kwargs)``, raising :class:`ShardTimeoutError` on timeout.

    With no timeout the call runs inline.  With one, it runs on a daemon
    thread so a hung shard cannot wedge the caller; the abandoned thread is
    left to finish (or leak) on its own -- acceptable for an in-process
    cluster, and exactly what lets replica failover move on.
    """
    kwargs = kwargs or {}
    if timeout_seconds is None:
        return target(*args, **kwargs)
    outcome: list = []
    failure: list[BaseException] = []

    def runner() -> None:
        try:
            outcome.append(target(*args, **kwargs))
        except BaseException as error:  # propagated to the caller below
            failure.append(error)

    thread = threading.Thread(target=runner, daemon=True,
                              name=f"repro-cluster-{label}")
    thread.start()
    thread.join(timeout_seconds)
    if thread.is_alive():
        raise ShardTimeoutError(f"{label} did not answer within {timeout_seconds}s")
    if failure:
        raise failure[0]
    return outcome[0]


class ClusterDispatcher:
    """Scatter ``route_batch`` across shards, gather, and merge top-k.

    With ``careful_targets`` and an ``escalation_threshold`` the dispatcher
    runs a two-tier cascade: every question goes through the (cheap) primary
    targets first, and only questions whose merged top-1 confidence -- the
    pooled softmax weight -- falls below the threshold are re-scattered to the
    careful tier (typically the same shards at a wider beam budget).  Ambiguous
    questions are exactly the low-confidence ones, so the cascade restores
    monolithic fidelity while paying wide-beam cost on a small fraction of
    traffic.
    """

    def __init__(self, targets: Sequence[ShardTarget],
                 default_max_candidates: int = 5,
                 shard_timeout_seconds: float | None = None,
                 allow_partial: bool = False,
                 max_workers: int | None = None,
                 careful_targets: Sequence[ShardTarget] | None = None,
                 escalation_threshold: float | None = None,
                 wave_engine=None) -> None:
        if not targets:
            raise ValueError("the dispatcher needs at least one shard target")
        if careful_targets is not None and len(careful_targets) != len(targets):
            raise ValueError("careful_targets must pair up with targets")
        if escalation_threshold is not None and not 0.0 < escalation_threshold <= 1.0:
            raise ValueError("escalation_threshold must be in (0, 1]")
        self.targets = list(targets)
        self.careful_targets = list(careful_targets) if careful_targets else None
        self.escalation_threshold = escalation_threshold
        #: A :class:`repro.cluster.wave.ClusterWaveEngine` (or None): when
        #: set, both scatter tiers decode through one stacked kernel stream
        #: instead of one thread-pool call per shard.
        self.wave_engine = wave_engine
        self.default_max_candidates = default_max_candidates
        self.shard_timeout_seconds = shard_timeout_seconds
        self.allow_partial = allow_partial
        # With a careful tier the pool holds one scatter arm per shard *per
        # tier*: multiplexed workers carry concurrent frames, so one wave's
        # escalation can be in flight while another wave's fast tier scatters
        # to the same workers instead of queueing behind a pool slot.
        tiers = 2 if careful_targets else 1
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or len(self.targets) * tiers,
            thread_name_prefix="repro-cluster-dispatch",
        )
        self._closed = False
        self._stats_lock = threading.Lock()
        self.shard_failures = 0
        #: Of the failures, how many were timeouts.  A partial gather that
        #: silently drops a slow shard is invisible to callers unless it is
        #: counted: operators watch this to tell "shard crashed" from "shard
        #: too slow for its budget".
        self.shards_timed_out = 0
        self.partial_gathers = 0
        self.escalations = 0

    @property
    def num_shards(self) -> int:
        return len(self.targets)

    def set_escalation_threshold(self, threshold: float) -> None:
        """Retune the confidence gate of a live cascade.

        The control plane's adaptive gate calls this between waves; the new
        threshold applies to the next ``route_batch``.  Raises when the
        cascade is disabled (no careful tier to escalate to) -- retuning a
        gate that gates nothing would silently do nothing.
        """
        if self.careful_targets is None:
            raise ValueError("no careful tier: the escalation cascade is disabled")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("escalation_threshold must be in (0, 1]")
        self.escalation_threshold = threshold

    # -- request path --------------------------------------------------------
    def route(self, question: str, max_candidates: int | None = None,
              trace=None) -> list[SchemaRoute]:
        return self.route_batch([question], max_candidates=max_candidates,
                                trace=trace)[0]

    def route_batch(self, questions: Sequence[str],
                    max_candidates: int | None = None,
                    trace=None) -> list[list[SchemaRoute]]:
        """Scatter ``questions`` to every shard and merge the answers.

        Raises :class:`ClusterError` when a shard fails (or, with
        ``allow_partial``, only when *every* shard fails); a partial gather
        merges whatever answered and counts the miss in ``shard_failures``.

        With a ``trace`` (a ``repro.obs`` context or scope), the dispatch
        records one ``scatter`` span per shard (the shard-layer spans nest
        under it), a ``merge`` span, and -- when the cascade fires -- an
        ``escalation`` span covering the careful re-scatter.
        """
        if self._closed:
            raise RuntimeError("the dispatcher has been closed")
        if not questions:
            return []
        questions = list(questions)
        if self.wave_engine is not None:
            merged = self._wave_merge(questions, max_candidates, careful=False,
                                      trace=trace)
        else:
            merged = self._scatter_merge(self.targets, questions, max_candidates,
                                         trace=trace)
        if self.careful_targets is not None and self.escalation_threshold is not None:
            needy = [index for index, routes in enumerate(merged)
                     if not routes or routes[0].score < self.escalation_threshold]
            if needy:
                with self._stats_lock:
                    self.escalations += len(needy)
                escalation_span = None
                escalation_trace = trace
                if trace is not None:
                    escalation_span = trace.start_span("escalation",
                                                       questions=len(needy))
                    escalation_trace = trace.scoped(escalation_span)
                try:
                    needy_questions = [questions[index] for index in needy]
                    if self.wave_engine is not None:
                        careful = self._wave_merge(needy_questions, max_candidates,
                                                   careful=True,
                                                   trace=escalation_trace)
                    else:
                        careful = self._scatter_merge(
                            self.careful_targets, needy_questions,
                            max_candidates, trace=escalation_trace)
                except BaseException as exc:
                    if escalation_span is not None:
                        escalation_span.end(status="error",
                                            error=f"{type(exc).__name__}: {exc}")
                    raise
                if escalation_span is not None:
                    escalation_span.end()
                for index, routes in zip(needy, careful):
                    merged[index] = routes
        return merged

    def _wave_merge(self, questions: list[str], max_candidates: int | None,
                    careful: bool, trace=None) -> list[list[SchemaRoute]]:
        """One stacked decode for the whole fleet, then the usual merge.

        No thread pool is involved: the wave engine's single kernel stream
        IS the scatter.  An engine failure is a whole-wave failure (there is
        no per-shard partial gather on this path)."""
        try:
            per_shard = self.wave_engine.route_wave(
                questions, max_candidates=max_candidates, careful=careful,
                trace=trace)
        except Exception as error:
            with self._stats_lock:
                self.shard_failures += 1
            raise ClusterError("wave decode failed") from error
        limit = max_candidates if max_candidates is not None else self.default_max_candidates
        with maybe_span(trace, "merge", shards=len(per_shard),
                        questions=len(questions)):
            return [
                merge_route_lists((shard_answers[index] for shard_answers in per_shard),
                                  max_candidates=limit)
                for index in range(len(questions))
            ]

    def _scatter_merge(self, targets: Sequence[ShardTarget], questions: list[str],
                       max_candidates: int | None,
                       trace=None) -> list[list[SchemaRoute]]:
        futures = []
        spans = []
        for index, target in enumerate(targets):
            span = None
            kwargs = None
            if trace is not None:
                span = trace.start_span("scatter", shard=index,
                                        questions=len(questions))
                kwargs = {"trace": trace.scoped(span)}
            spans.append(span)
            if self.shard_timeout_seconds is None:
                # No timeout means no watchdog: submit the target itself, so
                # the pool worker calls the shard directly instead of going
                # through the call_with_timeout wrapper (whose timeout path
                # would add a second thread hop per shard per wave).
                futures.append(self._pool.submit(
                    target, questions, max_candidates, **(kwargs or {})))
            else:
                futures.append(self._pool.submit(
                    call_with_timeout, target, (questions, max_candidates),
                    self.shard_timeout_seconds, f"shard-{index}", kwargs))
        gathered: list[list[list[SchemaRoute]]] = []
        first_error: BaseException | None = None
        for span, future in zip(spans, futures):
            try:
                gathered.append(future.result())
            except Exception as error:
                if span is not None:
                    span.end(status="error", error=f"{type(error).__name__}: {error}")
                with self._stats_lock:
                    self.shard_failures += 1
                    if isinstance(error, ShardTimeoutError):
                        self.shards_timed_out += 1
                if first_error is None:
                    first_error = error
            else:
                if span is not None:
                    span.end()
        if first_error is not None:
            if not self.allow_partial or not gathered:
                raise ClusterError("shard dispatch failed") from first_error
            with self._stats_lock:
                self.partial_gathers += 1
        limit = max_candidates if max_candidates is not None else self.default_max_candidates
        with maybe_span(trace, "merge", shards=len(gathered),
                        questions=len(questions)):
            return [
                merge_route_lists((shard_answers[index] for shard_answers in gathered),
                                  max_candidates=limit)
                for index in range(len(questions))
            ]

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ClusterDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
