"""Dense retrieval baseline (the SXFMR / sentence-transformer analogue).

The original baseline embeds questions and table documents with a pre-trained
sentence transformer (``all-mpnet-base-v2``) and ranks by cosine similarity.
Offline, the closest substitute with the same qualitative behaviour is a
*concept-aware* latent semantic encoder:

1. tokens are first mapped to concept ids using the shared synonym lexicon
   (so ``vocalist`` and ``singer`` share a concept, the way a pre-trained
   embedding model places paraphrases nearby);
2. documents become TF-IDF vectors over concepts;
3. a truncated SVD (latent semantic analysis) learned on the document corpus
   compresses the vectors into a dense embedding space;
4. questions are embedded with the same pipeline and ranked by cosine.

This keeps the baseline stronger than BM25 under synonym substitution but
still weaker than the fine-tuned router -- the ordering reported in the paper.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.datasets.vocabulary import SYNONYM_LEXICON
from repro.retrieval.base import RankedTable, SchemaRetriever
from repro.retrieval.documents import DocumentCollection, TableDocument
from repro.utils.text import tokenize_text


def _build_concept_map(coverage: float = 0.40) -> dict[str, str]:
    """Map lexicon paraphrase words to their canonical schema word.

    ``coverage`` controls which fraction of the lexicon the encoder "knows":
    a generic pre-trained embedding model recognises many common paraphrases
    but not the domain-specific ones, so only a stable subset of entries is
    included (selected by a hash of the canonical word, to stay deterministic).
    """
    import hashlib

    concept_of: dict[str, str] = {}
    for canonical, paraphrases in SYNONYM_LEXICON.items():
        concept_of[canonical] = canonical
        digest = hashlib.sha256(canonical.encode("utf-8")).digest()[0] / 255.0
        if digest > coverage:
            continue
        for phrase in paraphrases:
            for word in tokenize_text(phrase):
                # Keep the first (most specific) mapping for ambiguous words.
                concept_of.setdefault(word, canonical)
    return concept_of


_CONCEPT_MAP = _build_concept_map()

#: Paraphrase words that are too generic to be useful as concepts on their own.
_STOP_CONCEPTS = {"of", "the", "a", "an", "number", "how", "in"}


def map_to_concepts(tokens: list[str]) -> list[str]:
    """Map word tokens to concept ids using the synonym lexicon."""
    concepts = []
    for token in tokens:
        if token in _STOP_CONCEPTS:
            continue
        concepts.append(_CONCEPT_MAP.get(token, token))
    return concepts


class LsaEncoder:
    """TF-IDF + truncated SVD encoder over concept tokens."""

    def __init__(self, dimensions: int = 128) -> None:
        self.dimensions = dimensions
        self._vocabulary: dict[str, int] = {}
        self._idf: np.ndarray | None = None
        self._projection: np.ndarray | None = None

    # -- fitting ---------------------------------------------------------------
    def fit(self, token_lists: list[list[str]]) -> None:
        concept_lists = [map_to_concepts(tokens) for tokens in token_lists]
        vocabulary: dict[str, int] = {}
        for concepts in concept_lists:
            for concept in concepts:
                vocabulary.setdefault(concept, len(vocabulary))
        self._vocabulary = vocabulary
        num_documents = len(concept_lists)
        document_frequency = np.zeros(len(vocabulary))
        for concepts in concept_lists:
            for concept in set(concepts):
                document_frequency[vocabulary[concept]] += 1
        self._idf = np.log((num_documents + 1.0) / (document_frequency + 1.0)) + 1.0
        matrix = np.stack([self._term_vector(concepts) for concepts in concept_lists])
        dimensions = min(self.dimensions, min(matrix.shape))
        if dimensions < 1:
            dimensions = 1
        # Truncated SVD of the document-term matrix; the right singular vectors
        # define the latent projection.
        _, _, vt = np.linalg.svd(matrix, full_matrices=False)
        self._projection = vt[:dimensions].T  # (vocab, dims)

    def _term_vector(self, concepts: list[str]) -> np.ndarray:
        vector = np.zeros(len(self._vocabulary))
        counts = Counter(concepts)
        for concept, count in counts.items():
            index = self._vocabulary.get(concept)
            if index is None:
                continue
            vector[index] = (1.0 + math.log(count)) * float(self._idf[index])
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    # -- encoding ------------------------------------------------------------------
    def encode_tokens(self, tokens: list[str]) -> np.ndarray:
        if self._projection is None:
            raise RuntimeError("fit() must be called before encoding")
        vector = self._term_vector(map_to_concepts(tokens))
        embedded = vector @ self._projection
        norm = np.linalg.norm(embedded)
        return embedded / norm if norm > 0 else embedded

    def encode_text(self, text: str) -> np.ndarray:
        return self.encode_tokens(tokenize_text(text))


class DenseRetriever(SchemaRetriever):
    """Cosine-similarity retrieval over LSA embeddings of table documents."""

    name = "sxfmr"

    def __init__(self, dimensions: int = 128) -> None:
        self.encoder = LsaEncoder(dimensions=dimensions)
        self._documents: list[TableDocument] = []
        self._embeddings: np.ndarray | None = None

    def index(self, documents: DocumentCollection) -> None:
        self._documents = list(documents)
        token_lists = [document.tokens() for document in self._documents]
        self.encoder.fit(token_lists)
        self._embeddings = np.stack([
            self.encoder.encode_tokens(tokens) for tokens in token_lists
        ])

    def rank_tables(self, question: str, top_k: int = 100) -> list[RankedTable]:
        if self._embeddings is None:
            raise RuntimeError("index() must be called before rank_tables()")
        query = self.encoder.encode_text(question)
        similarities = self._embeddings @ query
        order = np.argsort(similarities)[::-1][:top_k]
        return [
            RankedTable(database=self._documents[index].database,
                        table=self._documents[index].table,
                        score=float(similarities[index]))
            for index in order
        ]
