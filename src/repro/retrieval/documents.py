"""Table documents: the retrieval targets shared by every baseline.

Following §4.1.5, tables are the retrieval targets and the content of each
table document is the flat normalised names of the table and its columns.
Fine-tuned baselines may expand documents with synthetic questions (the
"fine-tuned on synthetic data" rows of Table 3/4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.catalog import Catalog
from repro.utils.text import tokenize_text


@dataclass
class TableDocument:
    """One retrievable table."""

    database: str
    table: str
    text: str
    #: Extra text appended by fine-tuning (synthetic questions about the table).
    expansion: str = ""

    @property
    def key(self) -> tuple[str, str]:
        return (self.database, self.table)

    def tokens(self) -> list[str]:
        return tokenize_text(f"{self.text} {self.expansion}".strip())


@dataclass
class DocumentCollection:
    """All table documents of a catalog, with lookup helpers."""

    documents: list[TableDocument] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def by_key(self) -> dict[tuple[str, str], TableDocument]:
        return {document.key: document for document in self.documents}

    def expand(self, expansions: dict[tuple[str, str], list[str]]) -> "DocumentCollection":
        """Return a new collection with per-table expansion text appended."""
        expanded = []
        for document in self.documents:
            extra = " ".join(expansions.get(document.key, []))
            expanded.append(TableDocument(
                database=document.database,
                table=document.table,
                text=document.text,
                expansion=f"{document.expansion} {extra}".strip(),
            ))
        return DocumentCollection(expanded)


def build_table_documents(catalog: Catalog, include_database_name: bool = True) -> DocumentCollection:
    """Build the table-document collection of a catalog."""
    documents: list[TableDocument] = []
    for database, table in catalog.iter_tables():
        parts: list[str] = []
        if include_database_name:
            parts.extend(database.words)
        parts.extend(table.words)
        for column in table.columns:
            parts.extend(column.words)
        documents.append(TableDocument(
            database=database.name,
            table=table.name,
            text=" ".join(parts),
        ))
    return DocumentCollection(documents)
