"""CRUSH4SQL baseline: hallucinate a schema with an LLM, then retrieve.

CRUSH (Kothyari et al. 2023) prompts an LLM to *hallucinate* a plausible
schema for the question (a set of table/column-like phrases), retrieves
candidates for each hallucinated element with a base retriever, and combines
and re-ranks the results, preferring elements that come from the same
database.

The LLM is not available offline; :class:`SchemaHallucinator` substitutes a
deterministic hallucinator that maps question words back to canonical schema
vocabulary using the shared synonym lexicon -- the same kind of surface
normalisation the LLM performs -- and invents entity/attribute phrases from
them.  The retrieve-and-rerank pipeline is implemented faithfully.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.vocabulary import SYNONYM_LEXICON
from repro.retrieval.base import RankedTable, SchemaRetriever
from repro.retrieval.documents import DocumentCollection
from repro.utils.text import singularize, tokenize_text

#: Words that never become hallucinated schema elements.
_QUESTION_STOPWORDS = {
    "what", "which", "who", "whose", "where", "when", "how", "many", "much",
    "is", "are", "was", "were", "the", "a", "an", "of", "for", "with", "in",
    "on", "to", "and", "or", "all", "every", "each", "list", "show", "find",
    "give", "return", "number", "that", "have", "has", "there", "than", "at",
    "least", "most", "by", "from", "belonging", "linked", "associated",
    "connected", "values", "value",
}


def _build_reverse_lexicon(coverage: float = 0.50) -> dict[str, str]:
    """Paraphrase word -> canonical schema word, for a subset of the lexicon.

    The LLM behind CRUSH normalises many -- but not all -- paraphrases back to
    schema terminology; ``coverage`` selects a stable subset of lexicon entries
    (by hash of the canonical word) to model that imperfect normalisation.
    """
    import hashlib

    reverse: dict[str, str] = {}
    for canonical, paraphrases in SYNONYM_LEXICON.items():
        digest = hashlib.sha256(canonical.encode("utf-8")).digest()[1] / 255.0
        if digest > coverage:
            continue
        for phrase in paraphrases:
            for word in tokenize_text(phrase):
                if word not in _QUESTION_STOPWORDS:
                    reverse.setdefault(word, canonical)
    return reverse


_REVERSE_LEXICON = _build_reverse_lexicon()


class SchemaHallucinator:
    """Simulated LLM that rewrites a question into plausible schema elements."""

    #: Simulated per-question LLM cost in USD (matches the order of magnitude
    #: of the CRUSH rows in the paper's Table 5 cost discussion).
    cost_per_question: float = 0.0005

    def hallucinate(self, question: str, max_elements: int = 8) -> list[str]:
        """Return hallucinated schema-element phrases for ``question``."""
        elements: list[str] = []
        seen: set[str] = set()
        for token in tokenize_text(question):
            if token in _QUESTION_STOPWORDS:
                continue
            canonical = _REVERSE_LEXICON.get(token, token)
            canonical = singularize(canonical)
            if canonical in seen or canonical in _QUESTION_STOPWORDS:
                continue
            seen.add(canonical)
            elements.append(canonical)
            if len(elements) >= max_elements:
                break
        # A hallucinated schema always contains at least the raw question as a
        # fallback element so retrieval has something to work with.
        if not elements:
            elements.append(question)
        return elements


class CrushRetriever(SchemaRetriever):
    """Hallucinate-retrieve-rerank pipeline around a base retriever."""

    def __init__(self, base_retriever: SchemaRetriever,
                 hallucinator: SchemaHallucinator | None = None,
                 per_element_k: int = 8, same_database_bonus: float = 0.02) -> None:
        self.base_retriever = base_retriever
        self.hallucinator = hallucinator or SchemaHallucinator()
        self.per_element_k = per_element_k
        self.same_database_bonus = same_database_bonus
        self.name = f"crush_{base_retriever.name}"
        #: Accumulated simulated LLM cost (inspectable by the efficiency bench).
        self.total_cost = 0.0

    def index(self, documents: DocumentCollection) -> None:
        self.base_retriever.index(documents)

    def rank_tables(self, question: str, top_k: int = 100) -> list[RankedTable]:
        elements = self.hallucinator.hallucinate(question)
        self.total_cost += self.hallucinator.cost_per_question
        combined: dict[tuple[str, str], float] = defaultdict(float)
        per_database_hits: dict[str, int] = defaultdict(int)
        # Retrieve for the full question and for every hallucinated element
        # independently (the elements carry no question context, which is what
        # lets spurious matches from other databases slip in).
        queries = [question] + list(elements)
        for query in queries:
            for ranked in self.base_retriever.rank_tables(query, top_k=self.per_element_k):
                key = ranked.key
                if ranked.score <= 0:
                    continue
                combined[key] = max(combined[key], ranked.score)
                per_database_hits[ranked.database] += 1
        # Relationship-aware re-ranking: boost tables whose database collected
        # many hits across hallucinated elements (they likely join together).
        reranked = []
        for (database, table), score in combined.items():
            bonus = self.same_database_bonus * (per_database_hits[database] - 1)
            reranked.append(RankedTable(database=database, table=table, score=score + bonus))
        reranked.sort(key=lambda ranked: ranked.score, reverse=True)
        return reranked[:top_k]
