"""Routing evaluation metrics: Recall@k and mAP (paper §4.1.4).

For schema routing the paper reports database Recall@{1,5}, table
Recall@{5,15}, and table mAP.  Table identity is the (database, table) pair:
a retrieved table only counts if it comes from the gold database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Sequence

from repro.retrieval.base import RoutingPrediction


def database_recall_at_k(prediction: RoutingPrediction, gold_database: str, k: int) -> float:
    """1.0 if the gold database appears in the top-k ranked databases."""
    return 1.0 if gold_database in prediction.top_databases(k) else 0.0


def table_recall_at_k(prediction: RoutingPrediction, gold_database: str,
                      gold_tables: Sequence[str], k: int) -> float:
    """Fraction of gold tables present in the top-k retrieved tables."""
    if not gold_tables:
        return 1.0
    retrieved = set(prediction.top_tables(k))
    hits = sum(1 for table in gold_tables if (gold_database, table) in retrieved)
    return hits / len(gold_tables)


def mean_average_precision(prediction: RoutingPrediction, gold_database: str,
                           gold_tables: Sequence[str]) -> float:
    """Average precision of the table ranking against the gold tables."""
    if not gold_tables:
        return 1.0
    gold = {(gold_database, table) for table in gold_tables}
    hits = 0
    precision_sum = 0.0
    for rank, ranked in enumerate(prediction.ranked_tables, start=1):
        if ranked.key in gold:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(gold)


@dataclass
class RoutingScores:
    """Aggregated routing metrics over a test set."""

    database_recall: dict[int, float] = field(default_factory=dict)
    table_recall: dict[int, float] = field(default_factory=dict)
    table_map: float = 0.0
    count: int = 0

    def as_row(self) -> dict[str, float]:
        row: dict[str, float] = {}
        for k, value in sorted(self.database_recall.items()):
            row[f"db_recall@{k}"] = round(100.0 * value, 2)
        for k, value in sorted(self.table_recall.items()):
            row[f"table_recall@{k}"] = round(100.0 * value, 2)
        row["table_map"] = round(100.0 * self.table_map, 2)
        return row


def evaluate_routing(predictions: Sequence[RoutingPrediction],
                     gold_databases: Sequence[str],
                     gold_tables: Sequence[Sequence[str]],
                     database_ks: Sequence[int] = (1, 5),
                     table_ks: Sequence[int] = (5, 15)) -> RoutingScores:
    """Aggregate metrics over aligned prediction / gold sequences."""
    if not (len(predictions) == len(gold_databases) == len(gold_tables)):
        raise ValueError("predictions and gold annotations must be aligned")
    if not predictions:
        return RoutingScores(count=0)
    scores = RoutingScores(count=len(predictions))
    for k in database_ks:
        scores.database_recall[k] = mean(
            database_recall_at_k(prediction, database, k)
            for prediction, database in zip(predictions, gold_databases)
        )
    for k in table_ks:
        scores.table_recall[k] = mean(
            table_recall_at_k(prediction, database, tables, k)
            for prediction, database, tables in zip(predictions, gold_databases, gold_tables)
        )
    scores.table_map = mean(
        mean_average_precision(prediction, database, tables)
        for prediction, database, tables in zip(predictions, gold_databases, gold_tables)
    )
    return scores
