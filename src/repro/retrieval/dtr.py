"""DTR: a dense table retriever fine-tuned with contrastive learning.

The paper's DTR baseline (Herzig et al. 2021) trains a dense retriever on
(question, table) pairs with a contrastive objective.  Here the retriever is a
trainable linear projection on top of the concept TF-IDF features from
:mod:`repro.retrieval.dense`, optimised with an in-batch-negative InfoNCE loss
on the same synthetic (question, table) pairs the DBCopilot router is trained
on -- matching the paper's statement that BM25 and DTR were "fine-tuned on
synthetic data consistent with DBCopilot".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.modules import Linear, Module
from repro.nn.optim import AdamW
from repro.retrieval.base import RankedTable, SchemaRetriever
from repro.retrieval.dense import LsaEncoder
from repro.retrieval.documents import DocumentCollection, TableDocument
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class ContrastiveConfig:
    """Hyper-parameters of the contrastive fine-tuning."""

    embedding_dim: int = 96
    epochs: int = 8
    batch_size: int = 32
    learning_rate: float = 5e-3
    temperature: float = 0.1
    seed: int = 7


class _TwoTowerProjection(Module):
    """Shared-input, separate-tower linear projections for queries and tables."""

    def __init__(self, input_dim: int, output_dim: int, seed: int) -> None:
        rng = SeededRng(seed)
        self.query_tower = Linear(input_dim, output_dim, rng.child("query"), name="query_tower")
        self.table_tower = Linear(input_dim, output_dim, rng.child("table"), name="table_tower")

    def encode_queries(self, features: np.ndarray) -> Tensor:
        return self.query_tower(Tensor(features)).tanh()

    def encode_tables(self, features: np.ndarray) -> Tensor:
        return self.table_tower(Tensor(features)).tanh()


class ContrastiveTableRetriever(SchemaRetriever):
    """The DTR analogue: contrastively trained two-tower retrieval."""

    name = "dtr"

    def __init__(self, config: ContrastiveConfig | None = None, lsa_dimensions: int = 128) -> None:
        self.config = config or ContrastiveConfig()
        self.encoder = LsaEncoder(dimensions=lsa_dimensions)
        self._documents: list[TableDocument] = []
        self._document_features: np.ndarray | None = None
        self._document_embeddings: np.ndarray | None = None
        self._projection: _TwoTowerProjection | None = None
        self._trained = False

    # -- indexing -------------------------------------------------------------
    def index(self, documents: DocumentCollection) -> None:
        self._documents = list(documents)
        token_lists = [document.tokens() for document in self._documents]
        self.encoder.fit(token_lists)
        self._document_features = np.stack([
            self.encoder.encode_tokens(tokens) for tokens in token_lists
        ])
        # Before fine-tuning, fall back to the raw LSA embeddings.
        self._document_embeddings = self._document_features
        self._trained = False

    # -- fine-tuning ----------------------------------------------------------------
    def fine_tune(self, pairs: list[tuple[str, tuple[str, str]]]) -> list[float]:
        """Contrastively train on ``(question, (database, table))`` pairs.

        Returns the per-epoch mean InfoNCE loss (useful for tests).
        """
        if self._document_features is None:
            raise RuntimeError("index() must be called before fine_tune()")
        key_to_index = {document.key: index for index, document in enumerate(self._documents)}
        usable = [(question, key_to_index[key]) for question, key in pairs if key in key_to_index]
        if not usable:
            raise ValueError("no usable training pairs reference indexed tables")

        config = self.config
        input_dim = self._document_features.shape[1]
        self._projection = _TwoTowerProjection(input_dim, config.embedding_dim, config.seed)
        optimizer = AdamW(list(self._projection.parameters()),
                          learning_rate=config.learning_rate)
        rng = SeededRng(config.seed)
        question_features = np.stack([
            self.encoder.encode_text(question) for question, _ in usable
        ])
        table_indices = np.asarray([index for _, index in usable], dtype=np.int64)

        losses: list[float] = []
        for _ in range(config.epochs):
            order = rng.permutation(len(usable))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(usable), config.batch_size):
                batch = order[start:start + config.batch_size]
                if len(batch) < 2:
                    continue
                queries = self._projection.encode_queries(question_features[batch])
                tables = self._projection.encode_tables(
                    self._document_features[table_indices[batch]])
                # In-batch negatives: similarity matrix (B, B), diagonal is positive.
                logits = queries.matmul(tables.transpose_last_two()
                                        if tables.ndim == 3 else _transpose(tables))
                logits = logits * (1.0 / config.temperature)
                targets = np.arange(len(batch))
                loss = logits.cross_entropy(targets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))

        self._document_embeddings = _normalize_rows(
            self._projection.encode_tables(self._document_features).data)
        self._trained = True
        return losses

    # -- retrieval --------------------------------------------------------------------
    def rank_tables(self, question: str, top_k: int = 100) -> list[RankedTable]:
        if self._document_embeddings is None:
            raise RuntimeError("index() must be called before rank_tables()")
        features = self.encoder.encode_text(question)
        if self._trained and self._projection is not None:
            query = _normalize_rows(self._projection.encode_queries(features[None, :]).data)[0]
        else:
            query = features
        similarities = self._document_embeddings @ query
        order = np.argsort(similarities)[::-1][:top_k]
        return [
            RankedTable(database=self._documents[index].database,
                        table=self._documents[index].table,
                        score=float(similarities[index]))
            for index in order
        ]


def _transpose(tensor: Tensor) -> Tensor:
    """2-D transpose expressed through reshape-free autograd ops."""
    return tensor.transpose_last_two()


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.clip(norms, 1e-9, None)
