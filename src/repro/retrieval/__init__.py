"""Schema-routing baselines.

The paper compares its router against sparse retrieval (BM25), generic dense
retrieval (SXFMR / sentence transformers), LLM-enhanced retrieval (CRUSH4SQL's
hallucinate-then-retrieve), and a fine-tuned dense table retriever (DTR).
Each baseline retrieves *table documents* independently, ranks databases by
the average score of their retrieved tables, and forms candidate schemata from
the top database's retrieved tables -- exactly the protocol of §4.1.5.
"""

from repro.retrieval.documents import TableDocument, build_table_documents
from repro.retrieval.base import RankedTable, RoutingPrediction, SchemaRetriever
from repro.retrieval.bm25 import BM25Retriever
from repro.retrieval.dense import DenseRetriever, LsaEncoder
from repro.retrieval.dtr import ContrastiveTableRetriever
from repro.retrieval.crush import CrushRetriever, SchemaHallucinator
from repro.retrieval.ranking import prediction_from_table_ranking
from repro.retrieval.metrics import (
    RoutingScores,
    database_recall_at_k,
    evaluate_routing,
    mean_average_precision,
    table_recall_at_k,
)

__all__ = [
    "TableDocument",
    "build_table_documents",
    "RankedTable",
    "RoutingPrediction",
    "SchemaRetriever",
    "BM25Retriever",
    "DenseRetriever",
    "LsaEncoder",
    "ContrastiveTableRetriever",
    "CrushRetriever",
    "SchemaHallucinator",
    "prediction_from_table_ranking",
    "RoutingScores",
    "database_recall_at_k",
    "evaluate_routing",
    "mean_average_precision",
    "table_recall_at_k",
]
