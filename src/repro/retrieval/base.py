"""Common interfaces and result containers for schema routing methods."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.retrieval.documents import DocumentCollection


@dataclass(frozen=True)
class RankedTable:
    """One retrieved table with its score."""

    database: str
    table: str
    score: float

    @property
    def key(self) -> tuple[str, str]:
        return (self.database, self.table)


@dataclass(frozen=True)
class CandidateSchema:
    """One candidate SQL query schema ``<database, tables>`` with a score."""

    database: str
    tables: tuple[str, ...]
    score: float = 0.0


@dataclass
class RoutingPrediction:
    """The unified output of every routing method for one question.

    * ``ranked_databases``: databases ordered by decreasing relevance.
    * ``ranked_tables``: (database, table) pairs ordered by decreasing relevance.
    * ``candidate_schemas``: candidate schemata ordered by decreasing score;
      the first one is the "best schema" used by best-schema prompting.
    """

    ranked_databases: list[str] = field(default_factory=list)
    ranked_tables: list[RankedTable] = field(default_factory=list)
    candidate_schemas: list[CandidateSchema] = field(default_factory=list)

    @property
    def best_schema(self) -> CandidateSchema | None:
        return self.candidate_schemas[0] if self.candidate_schemas else None

    def top_databases(self, k: int) -> list[str]:
        return self.ranked_databases[:k]

    def top_tables(self, k: int) -> list[tuple[str, str]]:
        return [ranked.key for ranked in self.ranked_tables[:k]]


class SchemaRetriever(ABC):
    """A schema-routing method based on retrieving table documents."""

    #: Human-readable method name used in result tables.
    name: str = "retriever"

    @abstractmethod
    def index(self, documents: DocumentCollection) -> None:
        """Build the index over the table documents of a catalog."""

    @abstractmethod
    def rank_tables(self, question: str, top_k: int = 100) -> list[RankedTable]:
        """Return the ``top_k`` tables ranked by relevance to ``question``."""

    def route(self, question: str, top_k_tables: int = 100,
              max_candidates: int = 5) -> RoutingPrediction:
        """Full routing: rank tables, derive databases and candidate schemata."""
        from repro.retrieval.ranking import prediction_from_table_ranking

        ranked = self.rank_tables(question, top_k=top_k_tables)
        return prediction_from_table_ranking(ranked, max_candidates=max_candidates)
