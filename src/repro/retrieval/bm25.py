"""Okapi BM25 retrieval over table documents (the sparse baseline)."""

from __future__ import annotations

import math
from collections import Counter, defaultdict

from repro.retrieval.base import RankedTable, SchemaRetriever
from repro.retrieval.documents import DocumentCollection, TableDocument
from repro.utils.text import tokenize_text


class BM25Retriever(SchemaRetriever):
    """Standard Okapi BM25 with the usual two free parameters.

    The zero-shot configuration indexes the flat table/column names; the
    fine-tuned configuration (paper Table 3, "Fine-tuned / BM25") indexes
    documents expanded with synthetic questions, which is achieved by passing
    an expanded :class:`DocumentCollection` to :meth:`index`.
    """

    name = "bm25"

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._documents: list[TableDocument] = []
        self._document_tokens: list[list[str]] = []
        self._document_frequencies: dict[str, int] = {}
        self._average_length = 0.0

    # -- indexing -------------------------------------------------------------
    def index(self, documents: DocumentCollection) -> None:
        self._documents = list(documents)
        self._document_tokens = [document.tokens() for document in self._documents]
        frequencies: dict[str, int] = defaultdict(int)
        total_length = 0
        for tokens in self._document_tokens:
            total_length += len(tokens)
            for token in set(tokens):
                frequencies[token] += 1
        self._document_frequencies = dict(frequencies)
        self._average_length = total_length / max(len(self._documents), 1)

    # -- scoring ----------------------------------------------------------------
    def _idf(self, token: str) -> float:
        document_count = len(self._documents)
        containing = self._document_frequencies.get(token, 0)
        return math.log((document_count - containing + 0.5) / (containing + 0.5) + 1.0)

    def score(self, question: str, document_index: int) -> float:
        query_tokens = tokenize_text(question)
        tokens = self._document_tokens[document_index]
        counts = Counter(tokens)
        length = len(tokens)
        score = 0.0
        for token in query_tokens:
            frequency = counts.get(token, 0)
            if frequency == 0:
                continue
            idf = self._idf(token)
            numerator = frequency * (self.k1 + 1.0)
            denominator = frequency + self.k1 * (1.0 - self.b + self.b * length / max(self._average_length, 1e-9))
            score += idf * numerator / denominator
        return score

    def rank_tables(self, question: str, top_k: int = 100) -> list[RankedTable]:
        if not self._documents:
            raise RuntimeError("index() must be called before rank_tables()")
        scored = [
            RankedTable(database=document.database, table=document.table,
                        score=self.score(question, index))
            for index, document in enumerate(self._documents)
        ]
        scored.sort(key=lambda ranked: ranked.score, reverse=True)
        return scored[:top_k]
