"""Turning a table ranking into database rankings and candidate schemata.

The protocol follows §4.1.5: for each question the baselines retrieve the top
tables and rank databases by the average score of their retrieved tables; a
candidate schema consists of a candidate database plus the retrieved tables
that belong to it.
"""

from __future__ import annotations

from collections import defaultdict

from repro.retrieval.base import CandidateSchema, RankedTable, RoutingPrediction

#: Cap on the number of tables a candidate schema keeps per database; matches
#: the small table sets SQL query schemata actually have.
MAX_TABLES_PER_CANDIDATE = 6


def prediction_from_table_ranking(ranked_tables: list[RankedTable],
                                  max_candidates: int = 5,
                                  max_tables_per_candidate: int = MAX_TABLES_PER_CANDIDATE,
                                  ) -> RoutingPrediction:
    """Aggregate a flat table ranking into a :class:`RoutingPrediction`."""
    scores_by_database: dict[str, list[float]] = defaultdict(list)
    tables_by_database: dict[str, list[RankedTable]] = defaultdict(list)
    for ranked in ranked_tables:
        scores_by_database[ranked.database].append(ranked.score)
        tables_by_database[ranked.database].append(ranked)

    database_scores = {
        database: sum(scores) / len(scores)
        for database, scores in scores_by_database.items()
    }
    ranked_databases = sorted(database_scores, key=database_scores.get, reverse=True)

    candidates: list[CandidateSchema] = []
    for database in ranked_databases[:max_candidates]:
        tables = tables_by_database[database][:max_tables_per_candidate]
        candidates.append(CandidateSchema(
            database=database,
            tables=tuple(table.table for table in tables),
            score=database_scores[database],
        ))

    return RoutingPrediction(
        ranked_databases=ranked_databases,
        ranked_tables=list(ranked_tables),
        candidate_schemas=candidates,
    )
