"""Reproduction of DBCopilot (EDBT 2025).

DBCopilot decouples schema-agnostic NL2SQL over massive databases into two
stages: *schema routing* (a compact generative-retrieval "copilot" model that
navigates a natural-language question to its target database and tables) and
*SQL generation* (a large language model prompted with the routed schema).

This package implements the full system described in the paper together with
every substrate it depends on, from scratch:

* :mod:`repro.schema` -- relational schema model (databases, tables, columns,
  foreign keys, joinability detection).
* :mod:`repro.engine` -- in-memory relational engine used to execute SQL and
  compute execution accuracy.
* :mod:`repro.sql` -- SQL AST, parser, executor, and metadata extraction.
* :mod:`repro.datasets` -- synthetic Spider/BIRD/Fiben-style corpora and the
  robustness variants (synonym substitution, explicit-mention removal).
* :mod:`repro.nn` -- a compact numpy autograd + Seq2Seq substrate for the
  differentiable search index (DSI) router.
* :mod:`repro.retrieval` -- BM25, dense, CRUSH, and DTR routing baselines.
* :mod:`repro.core` -- the DBCopilot contribution: schema graph, DFS
  serialization, training-data synthesis, schema router, and graph-constrained
  decoding.
* :mod:`repro.llm` -- simulated LLM SQL generation with the paper's prompt
  strategies and cost model.
* :mod:`repro.experiments` -- harnesses that regenerate every table and figure
  of the paper's evaluation section.
* :mod:`repro.serving` -- deployment: versioned router checkpoints, a
  thread-safe route cache, micro-batched inference, metrics, and a load
  generator behind the :class:`RoutingService` façade.
* :mod:`repro.cluster` -- scale-out: partitioned catalogs served by shard
  workers behind a scatter-gather dispatcher with replication, rebalancing,
  and whole-cluster checkpoints (:class:`ClusterRoutingService`).

Top-level names are imported lazily so that ``import repro`` stays cheap and
sub-packages can be used independently.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

#: Mapping of re-exported names to the module that defines them.
_EXPORTS = {
    "Catalog": "repro.schema",
    "Column": "repro.schema",
    "Database": "repro.schema",
    "ForeignKey": "repro.schema",
    "Table": "repro.schema",
    "DBCopilot": "repro.core",
    "DBCopilotConfig": "repro.core",
    "SchemaGraph": "repro.core",
    "SchemaRoute": "repro.core",
    "SchemaRouter": "repro.core",
    "RoutingService": "repro.serving",
    "ServingConfig": "repro.serving",
    "ClusterConfig": "repro.cluster",
    "ClusterRoutingService": "repro.cluster",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str) -> Any:
    """Lazily resolve the re-exported public names."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
