"""Deterministic random number utilities.

Every stochastic component in the reproduction (dataset generation, random
walks, neural initialisation, sampling) draws from a :class:`SeededRng` so that
experiments are reproducible end to end.  Seeds for sub-components are derived
from a parent seed and a string label, which keeps independent components
decoupled: adding a new consumer of randomness does not perturb the streams of
existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def derive_seed(base_seed: int, label: str) -> int:
    """Derive a stable 32-bit seed from ``base_seed`` and a string ``label``."""
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


class SeededRng:
    """A reproducible random source wrapping :mod:`random` and numpy.

    Parameters
    ----------
    seed:
        Base seed for this stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._py = random.Random(self.seed)
        self._np = np.random.default_rng(self.seed)

    # -- stream management -------------------------------------------------
    def child(self, label: str) -> "SeededRng":
        """Return an independent stream derived from this one."""
        return SeededRng(derive_seed(self.seed, label))

    @property
    def numpy(self) -> np.random.Generator:
        """The underlying numpy generator (for vectorised sampling)."""
        return self._np

    # -- scalar draws -------------------------------------------------------
    def random(self) -> float:
        return self._py.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._py.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._py.uniform(low, high)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        return self._py.gauss(mu, sigma)

    def coin(self, probability: float = 0.5) -> bool:
        """Return ``True`` with the given probability."""
        return self._py.random() < probability

    # -- collection draws ---------------------------------------------------
    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._py.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._py.choices(list(items), weights=list(weights), k=1)[0]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items (clamped to the population size)."""
        k = min(k, len(items))
        return self._py.sample(list(items), k)

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new shuffled list, leaving the input untouched."""
        out = list(items)
        self._py.shuffle(out)
        return out

    def shuffle(self, items: list[T]) -> None:
        self._py.shuffle(items)

    # -- numpy helpers ------------------------------------------------------
    def normal(self, shape: tuple[int, ...], scale: float = 1.0) -> np.ndarray:
        return self._np.normal(0.0, scale, size=shape)

    def permutation(self, n: int) -> np.ndarray:
        return self._np.permutation(n)
