"""Shared utilities: seeded randomness, text normalisation, timing, tables."""

from repro.utils.rng import SeededRng, derive_seed
from repro.utils.text import (
    camel_to_snake,
    normalize_identifier,
    normalize_whitespace,
    pluralize,
    singularize,
    tokenize_text,
)
from repro.utils.timing import Stopwatch
from repro.utils.tables import ResultTable

__all__ = [
    "SeededRng",
    "derive_seed",
    "camel_to_snake",
    "normalize_identifier",
    "normalize_whitespace",
    "pluralize",
    "singularize",
    "tokenize_text",
    "Stopwatch",
    "ResultTable",
]
