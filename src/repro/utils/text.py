"""Text normalisation helpers shared by the schema, dataset, and NLP layers."""

from __future__ import annotations

import re

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_WORD = re.compile(r"[^a-z0-9_]+")
_WORD = re.compile(r"[a-z0-9]+")
_WHITESPACE = re.compile(r"\s+")

# Irregular noun forms used by the synthetic schema generator; pluralisation is
# intentionally small because schema identifiers only need to look realistic.
_IRREGULAR_PLURALS = {
    "person": "people",
    "child": "children",
    "category": "categories",
    "company": "companies",
    "city": "cities",
    "country": "countries",
    "facility": "facilities",
    "currency": "currencies",
    "inventory": "inventories",
    "delivery": "deliveries",
    "diagnosis": "diagnoses",
    "analysis": "analyses",
    "status": "statuses",
    "address": "addresses",
    "branch": "branches",
    "match": "matches",
    "batch": "batches",
    "index": "indexes",
    "series": "series",
    "species": "species",
    "staff": "staff",
}
_IRREGULAR_SINGULARS = {plural: singular for singular, plural in _IRREGULAR_PLURALS.items()}


def camel_to_snake(name: str) -> str:
    """Convert ``CamelCase`` (or mixedCase) to ``snake_case``."""
    return _CAMEL_BOUNDARY.sub("_", name).lower()


def normalize_identifier(name: str) -> str:
    """Normalise a schema identifier to lowercase snake_case words."""
    snake = camel_to_snake(name.strip())
    snake = snake.replace("-", "_").replace(" ", "_")
    snake = _NON_WORD.sub("_", snake)
    snake = re.sub(r"_+", "_", snake).strip("_")
    return snake


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace and strip the ends."""
    return _WHITESPACE.sub(" ", text).strip()


def tokenize_text(text: str) -> list[str]:
    """Lowercase word tokenisation used for retrieval and the router."""
    return _WORD.findall(text.lower().replace("_", " "))


def pluralize(word: str) -> str:
    """Return a plausible plural form of an English noun."""
    if word in _IRREGULAR_PLURALS:
        return _IRREGULAR_PLURALS[word]
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    if word.endswith("y") and len(word) > 1 and word[-2] not in "aeiou":
        return word[:-1] + "ies"
    return word + "s"


def singularize(word: str) -> str:
    """Best-effort inverse of :func:`pluralize`."""
    if word in _IRREGULAR_SINGULARS:
        return _IRREGULAR_SINGULARS[word]
    if word.endswith("ies") and len(word) > 3:
        return word[:-3] + "y"
    if word.endswith("es") and word[:-2].endswith(("s", "x", "z", "ch", "sh")):
        return word[:-2]
    if word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    return word
