"""Plain-text result tables for the benchmark harnesses.

Every benchmark prints the same rows and columns the paper reports.  A tiny
formatting helper keeps that output consistent and easy to diff against
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class ResultTable:
    """A simple column-aligned table with an optional title."""

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row; values are converted with :func:`format_cell`."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_cell(value) for value in values])

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, str]]:
        """Return the rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_cell(value: object) -> str:
    """Format a table cell: floats get two decimals, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_percent(value: float) -> str:
    """Format a 0..1 ratio as a percentage with two decimals."""
    return f"{100.0 * value:.2f}"


def render_grouped_tables(tables: Iterable[ResultTable]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(table.render() for table in tables)
