"""Lightweight timing helpers used by the efficiency experiments (Table 5)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across named sections.

    The efficiency experiment measures build time and query throughput for
    each routing method; a stopwatch keeps those measurements explicit and
    testable instead of scattering ``time.perf_counter()`` calls around.
    """

    sections: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and add it to section ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.sections[name] = self.sections.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated for ``name`` (0.0 if never measured)."""
        return self.sections.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per measurement for ``name``."""
        count = self.counts.get(name, 0)
        if count == 0:
            return 0.0
        return self.sections[name] / count

    def throughput(self, name: str, items: int) -> float:
        """Items per second processed during section ``name``."""
        elapsed = self.total(name)
        if elapsed <= 0.0:
            return float("inf") if items else 0.0
        return items / elapsed
