"""Versioned on-disk checkpoints for trained schema routers.

A checkpoint is a directory:

* ``manifest.json`` -- format version, the :class:`RouterConfig`, both
  vocabularies, the catalog (databases, tables, columns, foreign keys), the
  schema graph's joinable edges, and a SHA-256 checksum of the weight archive;
* ``weights.npz`` -- the :class:`Seq2SeqModel` state dict.

The manifest is pure JSON and the weights are lossless float64 arrays, so a
router loaded in a fresh process produces bit-identical routes to the router
that was saved.  This is the first cross-process artifact of the repo: a
serving fleet boots from a checkpoint instead of re-training per process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.graph import SchemaGraph
from repro.core.router import RouterConfig, SchemaRouter
from repro.nn.seq2seq import Seq2SeqConfig, Seq2SeqModel, VocabularySlice
from repro.nn.tokenizer import Vocabulary
from repro.schema.catalog import Catalog
from repro.schema.column import Column, ColumnType
from repro.schema.database import Database
from repro.schema.table import ForeignKey, Table

#: Bump when the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT = "repro-router-checkpoint"
CHECKPOINT_VERSION = 1

MANIFEST_FILE = "manifest.json"
WEIGHTS_FILE = "weights.npz"
#: Present only for sliced-vocabulary shard routers: the kept master ids and
#: the master output head, so a checkpoint-booted shard can still calibrate
#: its scores to master-vocabulary log-probabilities.  Old checkpoints simply
#: lack the manifest key (the format version is unchanged).
SLICE_FILE = "slice.npz"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint is missing, corrupt, or incompatible."""


# -- catalog <-> payload -------------------------------------------------------
def catalog_to_payload(catalog: Catalog) -> dict:
    return {
        "name": catalog.name,
        "databases": [
            {
                "name": database.name,
                "domain": database.domain,
                "comment": database.comment,
                "tables": [
                    {
                        "name": table.name,
                        "comment": table.comment,
                        "synonyms": list(table.synonyms),
                        "columns": [
                            {
                                "name": column.name,
                                "type": column.column_type.value,
                                "primary_key": column.is_primary_key,
                                "comment": column.comment,
                                "synonyms": list(column.synonyms),
                            }
                            for column in table.columns
                        ],
                    }
                    for table in database.tables
                ],
                "foreign_keys": [
                    {
                        "source_table": fk.source_table,
                        "source_column": fk.source_column,
                        "target_table": fk.target_table,
                        "target_column": fk.target_column,
                    }
                    for fk in database.foreign_keys
                ],
            }
            for database in catalog
        ],
    }


def catalog_from_payload(payload: dict) -> Catalog:
    databases = []
    for db_payload in payload["databases"]:
        tables = [
            Table(
                name=table_payload["name"],
                comment=table_payload.get("comment", ""),
                synonyms=tuple(table_payload.get("synonyms", ())),
                columns=[
                    Column(
                        name=column_payload["name"],
                        column_type=ColumnType(column_payload["type"]),
                        is_primary_key=column_payload.get("primary_key", False),
                        comment=column_payload.get("comment", ""),
                        synonyms=tuple(column_payload.get("synonyms", ())),
                    )
                    for column_payload in table_payload["columns"]
                ],
            )
            for table_payload in db_payload["tables"]
        ]
        foreign_keys = [ForeignKey(**fk_payload) for fk_payload in db_payload["foreign_keys"]]
        databases.append(Database(
            name=db_payload["name"],
            tables=tables,
            foreign_keys=foreign_keys,
            domain=db_payload.get("domain", ""),
            comment=db_payload.get("comment", ""),
        ))
    return Catalog(name=payload["name"], databases=databases)


# -- save / load ---------------------------------------------------------------
def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_router(router: SchemaRouter, path: str | Path) -> Path:
    """Write ``router`` (which must be trained) to a checkpoint directory."""
    if not router.is_trained:
        raise CheckpointError("cannot checkpoint an untrained router")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    weights_path = router.model.save_state_npz(path / WEIGHTS_FILE)
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "router_config": asdict(router.config),
        "source_vocabulary": router.source_vocabulary.to_payload(),
        "target_vocabulary": router.target_vocabulary.to_payload(),
        "catalog": catalog_to_payload(router.graph.catalog),
        "joinable_edges": [list(edge) for edge in router.graph.joinable_edges()],
        "training_losses": list(router.training_losses),
        "weights": {
            "file": WEIGHTS_FILE,
            "sha256": _sha256_of(weights_path),
            "num_parameters": router.num_parameters(),
        },
    }
    if router.vocabulary_slice is not None:
        slice_path = path / SLICE_FILE
        np.savez(slice_path,
                 kept_ids=router.vocabulary_slice.kept_ids,
                 output_weight=router.vocabulary_slice.output_weight,
                 output_bias=router.vocabulary_slice.output_bias)
        manifest["vocabulary_slice"] = {
            "file": SLICE_FILE,
            "sha256": _sha256_of(slice_path),
        }
    manifest_path = path / MANIFEST_FILE
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def load_manifest(path: str | Path) -> dict:
    """Read and validate the manifest of a checkpoint directory."""
    manifest_path = Path(path) / MANIFEST_FILE
    if not manifest_path.is_file():
        raise CheckpointError(f"no {MANIFEST_FILE} in {Path(path)!s}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt manifest in {Path(path)!s}: {error}") from error
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"not a router checkpoint: {manifest.get('format')!r}")
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {manifest.get('version')!r}"
            f" (this build reads version {CHECKPOINT_VERSION})"
        )
    return manifest


def load_router(path: str | Path) -> SchemaRouter:
    """Rebuild a trained :class:`SchemaRouter` from a checkpoint directory."""
    path = Path(path)
    manifest = load_manifest(path)
    weights_path = path / manifest["weights"]["file"]
    if not weights_path.is_file():
        raise CheckpointError(f"missing weight archive {weights_path!s}")
    recorded = manifest["weights"].get("sha256")
    if recorded and _sha256_of(weights_path) != recorded:
        raise CheckpointError(f"weight archive {weights_path!s} fails its checksum")

    config = RouterConfig(**manifest["router_config"])
    catalog = catalog_from_payload(manifest["catalog"])
    graph = SchemaGraph.from_components(
        catalog, [tuple(edge) for edge in manifest["joinable_edges"]])
    source_vocabulary = Vocabulary.from_payload(manifest["source_vocabulary"])
    target_vocabulary = Vocabulary.from_payload(manifest["target_vocabulary"])
    model = Seq2SeqModel(Seq2SeqConfig(
        source_vocab_size=len(source_vocabulary),
        target_vocab_size=len(target_vocabulary),
        embedding_dim=config.embedding_dim,
        hidden_dim=config.hidden_dim,
        seed=config.seed,
    ))
    try:
        model.load_state_npz(weights_path)
    except ValueError as error:
        raise CheckpointError(f"weight archive does not match the model: {error}") from error

    router = SchemaRouter(graph=graph, config=config)
    router.restore(model, source_vocabulary, target_vocabulary,
                   training_losses=manifest.get("training_losses"))
    slice_entry = manifest.get("vocabulary_slice")
    if slice_entry is not None:
        slice_path = path / slice_entry["file"]
        if not slice_path.is_file():
            raise CheckpointError(f"missing vocabulary-slice archive {slice_path!s}")
        recorded = slice_entry.get("sha256")
        if recorded and _sha256_of(slice_path) != recorded:
            raise CheckpointError(
                f"vocabulary-slice archive {slice_path!s} fails its checksum")
        with np.load(slice_path) as archive:
            router.vocabulary_slice = VocabularySlice(
                kept_ids=archive["kept_ids"],
                output_weight=archive["output_weight"],
                output_bias=archive["output_bias"])
    return router
