"""Serving metrics: counters, latency percentiles, QPS, batch-size histogram.

Everything is in-process and lock-guarded; ``snapshot()`` returns a plain
dict so benchmarks and operators can dump it as JSON.  Latencies are kept in
a bounded reservoir (the most recent ``max_samples`` observations) so a
long-running service does not grow without bound.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from collections import deque
from typing import Callable

#: Histogram bucket upper bounds in seconds (log-spaced, Prometheus-style).
#: Observations above the last bound land only in the implicit ``+Inf``
#: bucket.  Bucket counts are cumulative-from-birth, not reservoir-bounded:
#: Prometheus histograms are monotonic series, and ``rate()`` over them needs
#: counts that never go backwards.
BUCKET_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class LatencyRecorder:
    """Bounded reservoir of latency observations with percentile queries.

    ``count`` / ``total_seconds`` / ``max_seconds`` are exposed as
    lock-guarded properties; :meth:`totals` reads all three under one lock
    acquisition when a caller needs them mutually consistent.
    """

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._samples: deque[float] = deque(maxlen=max_samples)
        self._lock = threading.Lock()
        self._count = 0
        self._total_seconds = 0.0
        self._max_seconds = 0.0
        self._bucket_counts = [0] * (len(BUCKET_BOUNDS) + 1)  # last = +Inf

    def record(self, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` once -- or ``count`` times under one lock
        acquisition, for callers attributing one wave's per-item latency to
        every item in the wave."""
        if count < 1:
            return
        with self._lock:
            if count == 1:
                self._samples.append(seconds)
            else:
                self._samples.extend([seconds] * count)
            self._count += count
            self._total_seconds += seconds * count
            if seconds > self._max_seconds:
                self._max_seconds = seconds
            self._bucket_counts[bisect.bisect_left(BUCKET_BOUNDS, seconds)] += count

    # -- locked accessors ----------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return self._total_seconds

    @property
    def max_seconds(self) -> float:
        with self._lock:
            return self._max_seconds

    def totals(self) -> tuple[int, float, float]:
        """One consistent ``(count, total_seconds, max_seconds)`` read —
        unlike three property reads, no :meth:`record` can land in between."""
        with self._lock:
            return self._count, self._total_seconds, self._max_seconds

    @staticmethod
    def _percentile_of(samples: list[float], percent: float) -> float:
        """Nearest-rank percentile of pre-sorted ``samples``; 0.0 when empty."""
        if not samples:
            return 0.0
        rank = max(1, math.ceil(percent / 100.0 * len(samples)))
        return samples[min(rank, len(samples)) - 1]

    def percentile(self, percent: float) -> float:
        """The ``percent``-th percentile (nearest-rank) of the reservoir, in seconds."""
        with self._lock:
            samples = sorted(self._samples)
        return self._percentile_of(samples, percent)

    @property
    def mean_seconds(self) -> float:
        count, total_seconds, _ = self.totals()
        return total_seconds / count if count else 0.0

    def summary(self) -> dict:
        """A consistent snapshot: all fields reflect one point in time.

        Count, mean, max, every percentile, and the histogram buckets are
        read under a single lock acquisition, so concurrent :meth:`record`
        calls can never produce a summary whose count and percentiles
        disagree.  An empty window yields zeros throughout instead of
        raising.  ``buckets`` holds *cumulative* counts keyed by upper bound
        (string keys, JSON-safe, ``"+Inf"`` last) — the shape the exporter
        renders as a Prometheus histogram.
        """
        with self._lock:
            samples = sorted(self._samples)
            count = self._count
            total_seconds = self._total_seconds
            max_seconds = self._max_seconds
            bucket_counts = list(self._bucket_counts)
        mean_seconds = total_seconds / count if count else 0.0
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, bucket in zip(BUCKET_BOUNDS, bucket_counts):
            cumulative += bucket
            buckets[str(bound)] = cumulative
        buckets["+Inf"] = count
        return {
            "count": count,
            "total_seconds": round(total_seconds, 6),
            "mean_ms": round(mean_seconds * 1000.0, 3),
            "p50_ms": round(self._percentile_of(samples, 50.0) * 1000.0, 3),
            "p95_ms": round(self._percentile_of(samples, 95.0) * 1000.0, 3),
            "p99_ms": round(self._percentile_of(samples, 99.0) * 1000.0, 3),
            "max_ms": round(max_seconds * 1000.0, 3),
            "buckets": buckets,
        }


#: Width of the sliding QPS window, in seconds.
QPS_WINDOW_SECONDS = 60


class WindowedCounter:
    """A counter summed over a trailing window (per-second buckets).

    The sliding-QPS bookkeeping inside :class:`MetricsRegistry`, factored
    out so other layers can maintain their own load windows — the cluster
    service keeps one per database to know which catalogs are winning the
    routed traffic *right now* (the controller's hot-shard signal), where a
    cumulative counter would forever remember last hour's hot set.
    """

    def __init__(self, window_seconds: int = QPS_WINDOW_SECONDS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: deque[list[int]] = deque()

    def note(self, amount: int = 1) -> None:
        second = int(self._clock())
        with self._lock:
            if self._buckets and self._buckets[-1][0] == second:
                self._buckets[-1][1] += amount
            else:
                self._buckets.append([second, amount])
            cutoff = second - self.window_seconds
            while self._buckets and self._buckets[0][0] <= cutoff:
                self._buckets.popleft()

    def total(self) -> int:
        """Events inside the trailing window (expired buckets dropped)."""
        cutoff = int(self._clock()) - self.window_seconds
        with self._lock:
            return sum(count for second, count in self._buckets
                       if second > cutoff)


class MetricsRegistry:
    """Counters + latency + batch-size + per-stage accounting for one service."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.latency = LatencyRecorder()
        self._batch_sizes: dict[int, int] = {}
        self._stages: dict[str, LatencyRecorder] = {}
        # Sliding QPS window: (second-bucket, count) pairs, newest last.
        self._request_buckets: deque[list[int]] = deque()

    # -- recording -----------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount
            if name == "requests":
                self._note_requests_locked(amount)

    def _note_requests_locked(self, amount: int) -> None:
        second = int(self._clock())
        buckets = self._request_buckets
        if buckets and buckets[-1][0] == second:
            buckets[-1][1] += amount
        else:
            buckets.append([second, amount])
        cutoff = second - QPS_WINDOW_SECONDS
        while buckets and buckets[0][0] <= cutoff:
            buckets.popleft()

    def observe_latency(self, seconds: float, count: int = 1) -> None:
        self.latency.record(seconds, count)

    def observe_stage(self, name: str, seconds: float) -> None:
        """Record one duration against a named pipeline stage.

        Stage reservoirs are smaller than the end-to-end one (2048 samples)
        because a single request contributes to many stages."""
        with self._lock:
            recorder = self._stages.get(name)
            if recorder is None:
                recorder = self._stages[name] = LatencyRecorder(max_samples=2048)
        recorder.record(seconds)

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    # -- reading -------------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """All counters under one lock acquisition (mutually consistent)."""
        with self._lock:
            return dict(self._counters)

    def uptime_seconds(self) -> float:
        return max(self._clock() - self._started, 1e-9)

    def qps(self) -> float:
        """Completed requests per second over the registry's lifetime.

        Misleading on a long-idle service (the denominator never stops
        growing); prefer :meth:`window_qps` for a load-responsive reading."""
        return self.counter("requests") / self.uptime_seconds()

    def window_qps(self) -> float:
        """Requests per second over the trailing :data:`QPS_WINDOW_SECONDS`.

        Unlike :meth:`qps`, this recovers immediately when fresh load hits a
        service that sat idle: only the last window's buckets count, and the
        denominator is capped at the window width (and floored at one second
        so a brand-new registry is not wildly extrapolated)."""
        now = int(self._clock())
        cutoff = now - QPS_WINDOW_SECONDS
        with self._lock:
            requests = sum(count for second, count in self._request_buckets
                           if second > cutoff)
        horizon = max(min(self.uptime_seconds(), float(QPS_WINDOW_SECONDS)), 1.0)
        return requests / horizon

    def stage_summaries(self) -> dict[str, dict]:
        """Per-stage latency summaries, keyed by stage name (sorted)."""
        with self._lock:
            stages = sorted(self._stages.items())
        return {name: recorder.summary() for name, recorder in stages}

    def batch_size_histogram(self) -> dict[str, int]:
        """Batch-size -> count, with *string* keys: the same shape
        :meth:`snapshot` publishes (and the wire protocol carries), so the
        two views of the histogram always compare equal."""
        with self._lock:
            return {str(size): count
                    for size, count in sorted(self._batch_sizes.items())}

    def mean_batch_size(self) -> float:
        with self._lock:
            total = sum(size * count for size, count in self._batch_sizes.items())
            batches = sum(self._batch_sizes.values())
        return total / batches if batches else 0.0

    def snapshot(self) -> dict:
        """A consistent snapshot: counters and batch accounting are read under
        one lock acquisition (latency has its own lock and snapshots itself in
        :meth:`LatencyRecorder.summary`), so QPS, counters, and the histogram
        all describe the same instant.

        The snapshot is part of the cluster wire protocol (subprocess shard
        workers answer ``stats_request`` with it), so it must survive a JSON
        round-trip *unchanged*: histogram keys are strings, because JSON would
        silently stringify integer keys and a local snapshot would no longer
        equal a remote one."""
        uptime = self.uptime_seconds()
        with self._lock:
            counters = dict(self._counters)
            histogram = {str(size): count
                         for size, count in sorted(self._batch_sizes.items())}
        batch_total = sum(int(size) * count for size, count in histogram.items())
        batches = sum(histogram.values())
        return {
            "uptime_seconds": round(uptime, 3),
            "counters": counters,
            "qps": round(counters.get("requests", 0) / uptime, 2),
            "qps_window": round(self.window_qps(), 2),
            "qps_window_seconds": QPS_WINDOW_SECONDS,
            "latency": self.latency.summary(),
            "batch_size_histogram": histogram,
            "mean_batch_size": round(batch_total / batches, 2) if batches else 0.0,
            "stages": self.stage_summaries(),
        }
