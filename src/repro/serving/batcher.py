"""Micro-batching for routing requests.

Individual ``submit`` calls (typically from many request threads) are queued
and coalesced by a single worker thread into batches of up to
``max_batch_size`` requests, waiting at most ``max_wait_seconds`` after the
first queued request before dispatching.  The batch is routed with one
``route_batch`` call, which amortizes source encoding, tokenizer setup, and
constraint setup across the batch (paper §3.5 positions the router as the
cheap front of an LLM pipeline; batching is how that stays true under load).

Requests with different ``max_candidates`` are grouped within a batch so each
group still routes in one call.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class BatcherConfig:
    """Coalescing parameters."""

    max_batch_size: int = 8
    #: How long the worker waits for the batch to fill after the first request.
    max_wait_seconds: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")


@dataclass
class _Request:
    question: str
    max_candidates: int | None
    future: Future
    #: Optional repro.obs trace context riding along with the request.
    trace: object | None = None
    queue_span: object | None = None


#: ``route_batch(questions, max_candidates) -> list of per-question results``.
#: Callables may additionally accept a third positional ``traces`` argument (a
#: per-question list of trace contexts); the batcher only passes it when at
#: least one request in the group carries a trace, so plain two-argument
#: callables keep working untraced.
RouteBatchFn = Callable[[Sequence[str], "int | None"], "list"]


class MicroBatcher:
    """Coalesces queued routing requests into batched ``route_batch`` calls."""

    def __init__(self, route_batch: RouteBatchFn, config: BatcherConfig | None = None,
                 on_batch: Callable[[int], None] | None = None) -> None:
        self._route_batch = route_batch
        self.config = config or BatcherConfig()
        self._on_batch = on_batch
        self._queue: deque[_Request] = deque()
        self._condition = threading.Condition()
        self._closed = False
        self.batches_dispatched = 0
        self.requests_dispatched = 0
        self.batch_sizes: dict[int, int] = {}
        self._worker = threading.Thread(target=self._run, name="repro-serving-batcher",
                                        daemon=True)
        self._worker.start()

    # -- client side ---------------------------------------------------------
    def submit(self, question: str, max_candidates: int | None = None,
               trace=None) -> Future:
        """Queue one question; the future resolves to its routes.

        With a ``trace``, a ``queue_wait`` span covers the time from enqueue
        until the worker thread picks the request up for dispatch."""
        future: Future = Future()
        queue_span = trace.start_span("queue_wait") if trace is not None else None
        with self._condition:
            if self._closed:
                if queue_span is not None:
                    queue_span.end(status="error", error="batcher closed")
                raise RuntimeError("the batcher has been closed")
            self._queue.append(
                _Request(question, max_candidates, future, trace, queue_span))
            self._condition.notify()
        return future

    def queue_depth(self) -> int:
        """Requests enqueued but not yet collected by the worker thread —
        the backlog the health probe judges against ``max_batch_size``."""
        with self._condition:
            return len(self._queue)

    def close(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` the queue is served first."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    if request.queue_span is not None:
                        request.queue_span.end(status="error",
                                               error="batcher closed")
                    request.future.set_exception(RuntimeError("batcher closed"))
            self._condition.notify_all()
        self._worker.join(timeout=10.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker side ---------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._dispatch(batch)

    def _collect(self) -> list[_Request] | None:
        with self._condition:
            while not self._queue:
                if self._closed:
                    return None
                self._condition.wait()
            deadline = time.monotonic() + self.config.max_wait_seconds
            while len(self._queue) < self.config.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
            count = min(len(self._queue), self.config.max_batch_size)
            return [self._queue.popleft() for _ in range(count)]

    def _dispatch(self, batch: list[_Request]) -> None:
        self.batches_dispatched += 1
        self.requests_dispatched += len(batch)
        self.batch_sizes[len(batch)] = self.batch_sizes.get(len(batch), 0) + 1
        if self._on_batch is not None:
            self._on_batch(len(batch))
        for request in batch:
            if request.queue_span is not None:
                request.queue_span.annotate(batch_size=len(batch))
                request.queue_span.end()
        # Group by max_candidates so each group is a single route_batch call.
        groups: dict[int | None, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.max_candidates, []).append(request)
        for max_candidates, requests in groups.items():
            try:
                if any(request.trace is not None for request in requests):
                    results = self._route_batch(
                        [request.question for request in requests],
                        max_candidates,
                        [request.trace for request in requests])
                else:
                    results = self._route_batch(
                        [request.question for request in requests], max_candidates)
            except BaseException as error:  # propagate to every waiter
                for request in requests:
                    request.future.set_exception(error)
                continue
            for request, result in zip(requests, results):
                request.future.set_result(result)
