"""Seeded workload generation and load driving for the routing service.

Modeled on QPS-driven workload drivers (pyrqg's ``WorkloadConfig``): a
:class:`LoadGenerator` first materializes a deterministic request stream from
a question pool — with Zipf-like repetition so cache behavior is realistic —
then drives any ``submit``-style callable either closed-loop (optionally with
several client threads) or paced at a target QPS, and reports throughput and
latency percentiles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.serving.metrics import LatencyRecorder
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the generated request stream."""

    num_requests: int = 200
    #: Fraction of ``num_requests`` drawn as *distinct* questions; the rest
    #: are repeats, skewed towards the head of the pool ("head" distribution).
    unique_fraction: float = 0.25
    #: Zipf-like skew exponent; higher concentrates traffic on few questions.
    skew: float = 1.0
    #: "head" draws from a truncated pool of ``num_requests * unique_fraction``
    #: distinct questions; "zipf" draws rank-weighted from the *whole* question
    #: pool (``P(rank) ~ 1 / rank^skew``), the shape cluster benchmarks use to
    #: model hot-shard traffic without capping the distinct-question tail.
    distribution: str = "head"
    seed: int = 0
    #: "closed" (back-to-back), "paced" (open loop at ``target_qps``), or
    #: "burst" (paced with an overload spike window -- the reproducible
    #: SLO-violation scenario).
    mode: str = "closed"
    target_qps: float = 0.0
    #: Client threads for closed-loop mode.
    concurrency: int = 1
    #: Burst mode: the spike window's QPS (must exceed ``target_qps``)...
    burst_qps: float = 0.0
    #: ...covering the requests from ``burst_start_fraction`` of the stream
    #: to ``burst_start_fraction + burst_fraction`` (by request index, so the
    #: envelope is deterministic for a given config).
    burst_start_fraction: float = 0.4
    burst_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if not 0.0 < self.unique_fraction <= 1.0:
            raise ValueError("unique_fraction must be in (0, 1]")
        if self.distribution not in ("head", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if self.mode not in ("closed", "paced", "burst"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mode in ("paced", "burst") and self.target_qps <= 0:
            raise ValueError(f"{self.mode} mode requires a positive target_qps")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.mode == "burst":
            if self.burst_qps <= self.target_qps:
                raise ValueError("burst mode requires burst_qps > target_qps")
            if not 0.0 <= self.burst_start_fraction < 1.0:
                raise ValueError("burst_start_fraction must be in [0, 1)")
            if not 0.0 < self.burst_fraction <= 1.0 - self.burst_start_fraction:
                raise ValueError("burst_fraction must fit inside the stream "
                                 "after burst_start_fraction")


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    num_requests: int = 0
    errors: int = 0
    duration_seconds: float = 0.0
    throughput_rps: float = 0.0
    latency: dict = field(default_factory=dict)
    #: Burst mode only: per-phase ("steady" / "burst") latency summaries.
    phases: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        report = {
            "num_requests": self.num_requests,
            "errors": self.errors,
            "duration_seconds": round(self.duration_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency": dict(self.latency),
        }
        if self.phases:
            report["phases"] = {name: dict(summary)
                                for name, summary in self.phases.items()}
        return report


class LoadGenerator:
    """Generates a deterministic workload over a question pool and drives it."""

    def __init__(self, questions: Sequence[str], config: WorkloadConfig | None = None) -> None:
        if not questions:
            raise ValueError("the question pool must not be empty")
        self.questions = list(questions)
        self.config = config or WorkloadConfig()

    # -- workload materialization -------------------------------------------
    def workload(self) -> list[str]:
        """The request stream: same config + pool => same list, always."""
        config = self.config
        rng = SeededRng(config.seed).child("workload")
        if config.distribution == "zipf":
            pool = self.questions
        else:
            pool_size = max(1, min(len(self.questions),
                                   round(config.num_requests * config.unique_fraction)))
            pool = self.questions[:pool_size]
        weights = [1.0 / (rank + 1) ** config.skew for rank in range(len(pool))]
        return [rng.weighted_choice(pool, weights) for _ in range(config.num_requests)]

    def phase_of(self, index: int) -> str:
        """Which pacing phase request ``index`` belongs to (burst mode)."""
        config = self.config
        if config.mode != "burst":
            return "steady"
        start = int(config.num_requests * config.burst_start_fraction)
        end = start + max(1, int(config.num_requests * config.burst_fraction))
        return "burst" if start <= index < end else "steady"

    def schedule(self) -> list[float]:
        """Release offsets (seconds from start) for paced / burst modes.

        Deterministic for a given config: steady requests are spaced at
        ``1 / target_qps``, burst-phase requests at ``1 / burst_qps`` -- a
        QPS envelope with a spike window, so an overload scenario replays
        identically run after run."""
        offsets: list[float] = []
        at = 0.0
        for index in range(self.config.num_requests):
            offsets.append(at)
            qps = self.config.burst_qps if self.phase_of(index) == "burst" \
                else self.config.target_qps
            at += 1.0 / qps
        return offsets

    # -- driving -------------------------------------------------------------
    def run(self, submit: Callable[[str], object]) -> LoadReport:
        """Drive ``submit`` with the workload and measure it."""
        requests = self.workload()
        if self.config.mode in ("paced", "burst"):
            return self._run_paced(submit, requests)
        return self._run_closed(submit, requests)

    def _run_closed(self, submit: Callable[[str], object],
                    requests: list[str]) -> LoadReport:
        recorder = LatencyRecorder(max_samples=len(requests))
        errors = [0]
        cursor = [0]
        lock = threading.Lock()

        def worker() -> None:
            while True:
                with lock:
                    position = cursor[0]
                    if position >= len(requests):
                        return
                    cursor[0] = position + 1
                question = requests[position]
                started = time.monotonic()
                try:
                    submit(question)
                except Exception:
                    with lock:
                        errors[0] += 1
                recorder.record(time.monotonic() - started)

        started = time.monotonic()
        if self.config.concurrency == 1:
            worker()
        else:
            threads = [threading.Thread(target=worker, name=f"loadgen-{index}")
                       for index in range(self.config.concurrency)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        duration = max(time.monotonic() - started, 1e-9)
        return self._report(requests, errors[0], duration, recorder)

    def run_batched(self, submit_many: Callable[[Sequence[str]], object],
                    batch_size: int = 16) -> LoadReport:
        """Drive a ``submit_many``-style target (e.g. a cluster service) with
        the workload cut into waves of ``batch_size`` requests.

        Scatter-gather services route a whole batch in one dispatch, so the
        natural load unit is a wave rather than a single call; the recorded
        latency is the per-request share of each wave.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        requests = self.workload()
        recorder = LatencyRecorder(max_samples=len(requests))
        errors = 0
        started = time.monotonic()
        for offset in range(0, len(requests), batch_size):
            wave = requests[offset:offset + batch_size]
            wave_started = time.monotonic()
            try:
                submit_many(wave)
            except Exception:
                errors += len(wave)
            per_request = (time.monotonic() - wave_started) / len(wave)
            for _ in wave:
                recorder.record(per_request)
        duration = max(time.monotonic() - started, 1e-9)
        return self._report(requests, errors, duration, recorder)

    def _run_paced(self, submit: Callable[[str], object],
                   requests: list[str]) -> LoadReport:
        recorder = LatencyRecorder(max_samples=len(requests))
        phase_recorders: dict[str, LatencyRecorder] = {}
        errors = 0
        offsets = self.schedule()
        started = time.monotonic()
        for index, question in enumerate(requests):
            delay = started + offsets[index] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            request_started = time.monotonic()
            try:
                submit(question)
            except Exception:
                errors += 1
            elapsed = time.monotonic() - request_started
            recorder.record(elapsed)
            if self.config.mode == "burst":
                phase = self.phase_of(index)
                phase_recorder = phase_recorders.get(phase)
                if phase_recorder is None:
                    phase_recorder = phase_recorders[phase] = \
                        LatencyRecorder(max_samples=len(requests))
                phase_recorder.record(elapsed)
        duration = max(time.monotonic() - started, 1e-9)
        report = self._report(requests, errors, duration, recorder)
        report.phases = {phase: phase_recorder.summary()
                         for phase, phase_recorder in sorted(phase_recorders.items())}
        return report

    def _report(self, requests: list[str], errors: int, duration: float,
                recorder: LatencyRecorder) -> LoadReport:
        return LoadReport(
            num_requests=len(requests),
            errors=errors,
            duration_seconds=duration,
            throughput_rps=len(requests) / duration,
            latency=recorder.summary(),
        )
