"""Seeded workload generation and load driving for the routing service.

Modeled on QPS-driven workload drivers (pyrqg's ``WorkloadConfig``): a
:class:`LoadGenerator` first materializes a deterministic request stream from
a question pool — with Zipf-like repetition so cache behavior is realistic —
then drives any ``submit``-style callable either closed-loop (optionally with
several client threads) or paced at a target QPS, and reports throughput and
latency percentiles.

On top of the single-envelope generator sits the scenario driver: a
:class:`ScenarioDriver` plays a sequence of :class:`ScenarioPhase` segments —
each with its own QPS, distribution, and hot set — against a service, with
two properties the control-plane benchmarks need:

* **schedule-relative latency**: every request has a deterministic release
  time, and its recorded latency is *completion minus scheduled release*.
  A service falling behind cannot hide the backlog in between-request gaps
  (the coordinated-omission mistake); collapse shows up as unbounded lag.
* **shed accounting**: a fast, typed
  :class:`repro.control.admission.AdmissionRejected` counts as *shed*, not
  as an error, and per-phase shed fractions are reported — the bench's
  "degrades instead of collapses" evidence.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.control.admission import AdmissionRejected
from repro.serving.metrics import LatencyRecorder
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the generated request stream."""

    num_requests: int = 200
    #: Fraction of ``num_requests`` drawn as *distinct* questions; the rest
    #: are repeats, skewed towards the head of the pool ("head" distribution).
    unique_fraction: float = 0.25
    #: Zipf-like skew exponent; higher concentrates traffic on few questions.
    skew: float = 1.0
    #: "head" draws from a truncated pool of ``num_requests * unique_fraction``
    #: distinct questions; "zipf" draws rank-weighted from the *whole* question
    #: pool (``P(rank) ~ 1 / rank^skew``), the shape cluster benchmarks use to
    #: model hot-shard traffic without capping the distinct-question tail.
    distribution: str = "head"
    seed: int = 0
    #: "closed" (back-to-back), "paced" (open loop at ``target_qps``), or
    #: "burst" (paced with an overload spike window -- the reproducible
    #: SLO-violation scenario).
    mode: str = "closed"
    target_qps: float = 0.0
    #: Client threads for closed-loop mode.
    concurrency: int = 1
    #: Burst mode: the spike window's QPS (must exceed ``target_qps``)...
    burst_qps: float = 0.0
    #: ...covering the requests from ``burst_start_fraction`` of the stream
    #: to ``burst_start_fraction + burst_fraction`` (by request index, so the
    #: envelope is deterministic for a given config).
    burst_start_fraction: float = 0.4
    burst_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if not 0.0 < self.unique_fraction <= 1.0:
            raise ValueError("unique_fraction must be in (0, 1]")
        if self.distribution not in ("head", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if self.mode not in ("closed", "paced", "burst"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mode in ("paced", "burst") and self.target_qps <= 0:
            raise ValueError(f"{self.mode} mode requires a positive target_qps")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.mode == "burst":
            if self.burst_qps <= self.target_qps:
                raise ValueError("burst mode requires burst_qps > target_qps")
            if not 0.0 <= self.burst_start_fraction < 1.0:
                raise ValueError("burst_start_fraction must be in [0, 1)")
            if not 0.0 < self.burst_fraction <= 1.0 - self.burst_start_fraction:
                raise ValueError("burst_fraction must fit inside the stream "
                                 "after burst_start_fraction")


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    num_requests: int = 0
    errors: int = 0
    duration_seconds: float = 0.0
    throughput_rps: float = 0.0
    latency: dict = field(default_factory=dict)
    #: Burst mode only: per-phase ("steady" / "burst") latency summaries.
    phases: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        report = {
            "num_requests": self.num_requests,
            "errors": self.errors,
            "duration_seconds": round(self.duration_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency": dict(self.latency),
        }
        if self.phases:
            report["phases"] = {name: dict(summary)
                                for name, summary in self.phases.items()}
        return report


class LoadGenerator:
    """Generates a deterministic workload over a question pool and drives it."""

    def __init__(self, questions: Sequence[str], config: WorkloadConfig | None = None) -> None:
        if not questions:
            raise ValueError("the question pool must not be empty")
        self.questions = list(questions)
        self.config = config or WorkloadConfig()

    # -- workload materialization -------------------------------------------
    def workload(self) -> list[str]:
        """The request stream: same config + pool => same list, always."""
        config = self.config
        rng = SeededRng(config.seed).child("workload")
        if config.distribution == "zipf":
            pool = self.questions
        else:
            pool_size = max(1, min(len(self.questions),
                                   round(config.num_requests * config.unique_fraction)))
            pool = self.questions[:pool_size]
        weights = [1.0 / (rank + 1) ** config.skew for rank in range(len(pool))]
        return [rng.weighted_choice(pool, weights) for _ in range(config.num_requests)]

    def phase_of(self, index: int) -> str:
        """Which pacing phase request ``index`` belongs to (burst mode)."""
        config = self.config
        if config.mode != "burst":
            return "steady"
        start = int(config.num_requests * config.burst_start_fraction)
        end = start + max(1, int(config.num_requests * config.burst_fraction))
        return "burst" if start <= index < end else "steady"

    def schedule(self) -> list[float]:
        """Release offsets (seconds from start) for paced / burst modes.

        Deterministic for a given config: steady requests are spaced at
        ``1 / target_qps``, burst-phase requests at ``1 / burst_qps`` -- a
        QPS envelope with a spike window, so an overload scenario replays
        identically run after run."""
        offsets: list[float] = []
        at = 0.0
        for index in range(self.config.num_requests):
            offsets.append(at)
            qps = self.config.burst_qps if self.phase_of(index) == "burst" \
                else self.config.target_qps
            at += 1.0 / qps
        return offsets

    # -- driving -------------------------------------------------------------
    def run(self, submit: Callable[[str], object]) -> LoadReport:
        """Drive ``submit`` with the workload and measure it."""
        requests = self.workload()
        if self.config.mode in ("paced", "burst"):
            return self._run_paced(submit, requests)
        return self._run_closed(submit, requests)

    def _run_closed(self, submit: Callable[[str], object],
                    requests: list[str]) -> LoadReport:
        recorder = LatencyRecorder(max_samples=len(requests))
        errors = [0]
        cursor = [0]
        lock = threading.Lock()

        def worker() -> None:
            while True:
                with lock:
                    position = cursor[0]
                    if position >= len(requests):
                        return
                    cursor[0] = position + 1
                question = requests[position]
                started = time.monotonic()
                try:
                    submit(question)
                except Exception:
                    with lock:
                        errors[0] += 1
                recorder.record(time.monotonic() - started)

        started = time.monotonic()
        if self.config.concurrency == 1:
            worker()
        else:
            threads = [threading.Thread(target=worker, name=f"loadgen-{index}")
                       for index in range(self.config.concurrency)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        duration = max(time.monotonic() - started, 1e-9)
        return self._report(requests, errors[0], duration, recorder)

    def run_batched(self, submit_many: Callable[[Sequence[str]], object],
                    batch_size: int = 16) -> LoadReport:
        """Drive a ``submit_many``-style target (e.g. a cluster service) with
        the workload cut into waves of ``batch_size`` requests.

        Scatter-gather services route a whole batch in one dispatch, so the
        natural load unit is a wave rather than a single call; the recorded
        latency is the per-request share of each wave.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        requests = self.workload()
        recorder = LatencyRecorder(max_samples=len(requests))
        errors = 0
        started = time.monotonic()
        for offset in range(0, len(requests), batch_size):
            wave = requests[offset:offset + batch_size]
            wave_started = time.monotonic()
            try:
                submit_many(wave)
            except Exception:
                errors += len(wave)
            per_request = (time.monotonic() - wave_started) / len(wave)
            for _ in wave:
                recorder.record(per_request)
        duration = max(time.monotonic() - started, 1e-9)
        return self._report(requests, errors, duration, recorder)

    def _run_paced(self, submit: Callable[[str], object],
                   requests: list[str]) -> LoadReport:
        recorder = LatencyRecorder(max_samples=len(requests))
        phase_recorders: dict[str, LatencyRecorder] = {}
        errors = 0
        offsets = self.schedule()
        started = time.monotonic()
        for index, question in enumerate(requests):
            delay = started + offsets[index] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            request_started = time.monotonic()
            try:
                submit(question)
            except Exception:
                errors += 1
            elapsed = time.monotonic() - request_started
            recorder.record(elapsed)
            if self.config.mode == "burst":
                phase = self.phase_of(index)
                phase_recorder = phase_recorders.get(phase)
                if phase_recorder is None:
                    phase_recorder = phase_recorders[phase] = \
                        LatencyRecorder(max_samples=len(requests))
                phase_recorder.record(elapsed)
        duration = max(time.monotonic() - started, 1e-9)
        report = self._report(requests, errors, duration, recorder)
        report.phases = {phase: phase_recorder.summary()
                         for phase, phase_recorder in sorted(phase_recorders.items())}
        return report

    def _report(self, requests: list[str], errors: int, duration: float,
                recorder: LatencyRecorder) -> LoadReport:
        return LoadReport(
            num_requests=len(requests),
            errors=errors,
            duration_seconds=duration,
            throughput_rps=len(requests) / duration,
            latency=recorder.summary(),
        )


# -- scenario driver -----------------------------------------------------------
#: Scenario names :func:`named_scenario` knows how to build.
SCENARIO_NAMES = ("steady", "burst", "shift_hot_set")


@dataclass(frozen=True)
class ScenarioPhase:
    """One segment of a scenario: its own QPS and its own traffic shape."""

    name: str
    #: Share of the scenario's ``num_requests`` this phase plays.
    fraction: float
    qps: float
    #: Question-mix shape, as in :class:`WorkloadConfig`.
    distribution: str = "head"
    skew: float = 1.0
    unique_fraction: float = 0.25
    #: Rotate the question pool by this many positions before drawing, so a
    #: later phase's *head* (its hot set) is a different slice of the pool —
    #: the "shift-hot-set" scenario is exactly a hot_offset change.
    hot_offset: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a phase needs a name")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.distribution not in ("head", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if not 0.0 < self.unique_fraction <= 1.0:
            raise ValueError("unique_fraction must be in (0, 1]")
        if self.hot_offset < 0:
            raise ValueError("hot_offset must be non-negative")


@dataclass(frozen=True)
class ScenarioConfig:
    """A named sequence of phases over one request budget."""

    phases: tuple[ScenarioPhase, ...]
    num_requests: int = 300
    seed: int = 0
    name: str = "scenario"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        if self.num_requests < len(self.phases):
            raise ValueError("need at least one request per phase")
        total = sum(phase.fraction for phase in self.phases)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"phase fractions must sum to 1, not {total:g}")

    def phase_lengths(self) -> list[int]:
        """Requests per phase: floors first, the last phase absorbs the
        remainder (every phase is guaranteed at least one request)."""
        lengths = [max(1, int(self.num_requests * phase.fraction))
                   for phase in self.phases[:-1]]
        lengths.append(max(1, self.num_requests - sum(lengths)))
        return lengths


def named_scenario(name: str, num_requests: int = 300, qps: float = 50.0,
                   seed: int = 0, burst_factor: float = 3.0) -> ScenarioConfig:
    """The stock scenarios, parameterized by a base QPS envelope.

    * ``steady`` — one flat phase at ``qps``;
    * ``burst`` — steady, then a ``burst_factor`` x overload spike, then
      steady again (the shed-then-recover scenario);
    * ``shift_hot_set`` — flat QPS whose hot question set rotates mid-run
      (the rebalancer's split-then-settle scenario).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    if name == "steady":
        phases = (ScenarioPhase("steady", 1.0, qps),)
    elif name == "burst":
        phases = (ScenarioPhase("warmup", 0.3, qps),
                  ScenarioPhase("burst", 0.4, qps * burst_factor),
                  ScenarioPhase("recover", 0.3, qps))
    elif name == "shift_hot_set":
        phases = (ScenarioPhase("hot_a", 0.5, qps, skew=2.0),
                  ScenarioPhase("hot_b", 0.5, qps, skew=2.0, hot_offset=64))
    else:
        raise ValueError(f"unknown scenario {name!r} "
                         f"(expected one of {SCENARIO_NAMES})")
    return ScenarioConfig(phases=phases, num_requests=num_requests,
                          seed=seed, name=name)


@dataclass
class ScenarioReport:
    """Outcome of one scenario run."""

    scenario: str = "scenario"
    num_requests: int = 0
    admitted: int = 0
    shed: int = 0
    errors: int = 0
    duration_seconds: float = 0.0
    throughput_rps: float = 0.0
    #: Schedule-relative latency of *admitted* requests (completion minus
    #: scheduled release — backlog is latency, not a hidden gap).
    latency: dict = field(default_factory=dict)
    #: Worst schedule lag observed across every request, admitted or not.
    max_lag_seconds: float = 0.0
    #: Per-phase name -> {requests, admitted, shed, errors, shed_fraction,
    #: latency} in phase order.
    phases: dict = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.num_requests if self.num_requests else 0.0

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "num_requests": self.num_requests,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_fraction": round(self.shed_fraction, 4),
            "errors": self.errors,
            "duration_seconds": round(self.duration_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "max_lag_seconds": round(self.max_lag_seconds, 4),
            "latency": dict(self.latency),
            "phases": {name: dict(summary)
                       for name, summary in self.phases.items()},
        }


class ScenarioDriver:
    """Plays a :class:`ScenarioConfig` against a ``submit`` callable."""

    def __init__(self, questions: Sequence[str],
                 config: ScenarioConfig) -> None:
        if not questions:
            raise ValueError("the question pool must not be empty")
        self.questions = list(questions)
        self.config = config

    # -- deterministic planning ----------------------------------------------
    def plan(self) -> list[tuple[str, str]]:
        """The full request stream as ``(phase_name, question)`` pairs: same
        config + pool => same stream, always."""
        stream: list[tuple[str, str]] = []
        lengths = self.config.phase_lengths()
        for index, (phase, length) in enumerate(zip(self.config.phases, lengths)):
            rng = SeededRng(self.config.seed).child(f"phase:{index}:{phase.name}")
            offset = phase.hot_offset % len(self.questions)
            rotated = self.questions[offset:] + self.questions[:offset]
            if phase.distribution == "zipf":
                pool = rotated
            else:
                pool_size = max(1, min(len(rotated),
                                       round(length * phase.unique_fraction)))
                pool = rotated[:pool_size]
            weights = [1.0 / (rank + 1) ** phase.skew
                       for rank in range(len(pool))]
            stream.extend((phase.name, rng.weighted_choice(pool, weights))
                          for _ in range(length))
        return stream

    def schedule(self) -> list[float]:
        """Deterministic release offsets (seconds from start): requests of a
        phase are spaced at ``1 / phase.qps``."""
        offsets: list[float] = []
        at = 0.0
        lengths = self.config.phase_lengths()
        for phase, length in zip(self.config.phases, lengths):
            spacing = 1.0 / phase.qps
            for _ in range(length):
                offsets.append(at)
                at += spacing
        return offsets

    # -- driving -------------------------------------------------------------
    def run(self, submit: Callable[[str], object],
            on_progress: Callable[[int, int], None] | None = None,
            progress_every: int = 100) -> ScenarioReport:
        """Open-loop paced run: release per :meth:`schedule`, record
        schedule-relative latency, count :class:`AdmissionRejected` as shed."""
        if progress_every <= 0:
            raise ValueError("progress_every must be positive")
        stream = self.plan()
        offsets = self.schedule()
        recorder = LatencyRecorder(max_samples=len(stream))
        phase_stats: dict[str, dict] = {}
        for phase in self.config.phases:
            phase_stats.setdefault(phase.name, {
                "requests": 0, "admitted": 0, "shed": 0, "errors": 0,
                "recorder": LatencyRecorder(max_samples=len(stream)),
            })
        admitted = shed = errors = 0
        max_lag = 0.0
        started = time.monotonic()
        for index, (phase_name, question) in enumerate(stream):
            release = started + offsets[index]
            delay = release - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            stats = phase_stats[phase_name]
            stats["requests"] += 1
            try:
                submit(question)
            except AdmissionRejected:
                shed += 1
                stats["shed"] += 1
            except Exception:
                errors += 1
                stats["errors"] += 1
            else:
                admitted += 1
                stats["admitted"] += 1
                lag = time.monotonic() - release
                recorder.record(lag)
                stats["recorder"].record(lag)
            max_lag = max(max_lag, time.monotonic() - release)
            if on_progress is not None and (index + 1) % progress_every == 0:
                on_progress(index + 1, len(stream))
        duration = max(time.monotonic() - started, 1e-9)
        phases = {}
        for phase in self.config.phases:
            stats = phase_stats[phase.name]
            if phase.name in phases:
                continue
            phases[phase.name] = {
                "requests": stats["requests"],
                "admitted": stats["admitted"],
                "shed": stats["shed"],
                "errors": stats["errors"],
                "shed_fraction": (round(stats["shed"] / stats["requests"], 4)
                                  if stats["requests"] else 0.0),
                "latency": stats["recorder"].summary(),
            }
        return ScenarioReport(
            scenario=self.config.name,
            num_requests=len(stream),
            admitted=admitted,
            shed=shed,
            errors=errors,
            duration_seconds=duration,
            throughput_rps=admitted / duration,
            latency=recorder.summary(),
            max_lag_seconds=max_lag,
            phases=phases,
        )
