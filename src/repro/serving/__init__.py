"""Serving subsystem: deploy a trained schema router as a service.

The paper's pitch (§3.5, Table 5) is that schema routing is *compact* — a
small model that sits in front of an LLM and answers "which database, which
tables?" cheaply at scale.  This package supplies the production half of that
claim:

* :mod:`repro.serving.checkpoint` -- versioned on-disk router checkpoints
  (JSON manifest + npz weights) so a service boots without retraining;
* :mod:`repro.serving.cache` -- a thread-safe LRU route cache with TTL and
  catalog-version invalidation;
* :mod:`repro.serving.batcher` -- a micro-batcher coalescing concurrent
  requests into batched decodes;
* :mod:`repro.serving.metrics` -- QPS, latency percentiles, batch-size
  histogram;
* :mod:`repro.serving.service` -- :class:`RoutingService`, the façade wiring
  all of the above behind ``submit`` / ``submit_many`` / ``stats``;
* :mod:`repro.serving.loadgen` -- a seeded closed-loop/QPS load generator
  used by ``benchmarks/bench_serving_throughput.py``.
"""

from repro.serving.batcher import BatcherConfig, MicroBatcher
from repro.serving.cache import RouteCache, normalize_question
from repro.serving.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    load_manifest,
    load_router,
    save_router,
)
from repro.serving.loadgen import (
    LoadGenerator,
    LoadReport,
    ScenarioConfig,
    ScenarioDriver,
    ScenarioPhase,
    ScenarioReport,
    WorkloadConfig,
    named_scenario,
)
from repro.serving.metrics import LatencyRecorder, MetricsRegistry
from repro.serving.service import RoutingService, ServingConfig

__all__ = [
    "BatcherConfig",
    "MicroBatcher",
    "RouteCache",
    "normalize_question",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "load_manifest",
    "load_router",
    "save_router",
    "LoadGenerator",
    "LoadReport",
    "ScenarioConfig",
    "ScenarioDriver",
    "ScenarioPhase",
    "ScenarioReport",
    "WorkloadConfig",
    "named_scenario",
    "LatencyRecorder",
    "MetricsRegistry",
    "RoutingService",
    "ServingConfig",
]
