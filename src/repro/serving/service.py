"""The routing service façade: checkpoint + cache + batcher + metrics.

:class:`RoutingService` turns a trained :class:`SchemaRouter` (built in
process or loaded from a checkpoint directory) into a long-lived, concurrent
serving object:

* ``submit(question)`` -- route one question (cache first, then the
  micro-batcher, which coalesces concurrent callers into batched decodes);
* ``submit_many(questions)`` -- route a list, answering repeats from cache and
  batching the remainder;
* ``stats()`` -- a JSON-friendly snapshot of QPS, latency percentiles, cache
  hit rate, and the batch-size histogram.

The service serializes access to the router (numpy decode shares lazily-built
constraint tries), so any number of client threads may call ``submit``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.control.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
)
from repro.core.router import SchemaRoute, SchemaRouter
from repro.obs import Tracer
from repro.obs.health import (
    HealthPolicy,
    HealthReport,
    admission_health,
    cache_health,
    error_rate_health,
    queue_health,
    rollup,
)
from repro.serving.batcher import BatcherConfig, MicroBatcher
from repro.serving.cache import RouteCache
from repro.serving.metrics import MetricsRegistry


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one service instance."""

    #: Default number of candidate schemata per answer (None = router default).
    max_candidates: int | None = None
    enable_cache: bool = True
    cache_size: int = 2048
    cache_ttl_seconds: float | None = None
    enable_batching: bool = True
    max_batch_size: int = 8
    max_wait_seconds: float = 0.002
    #: Record a per-request trace (queue/encode/decode/parse spans).
    enable_tracing: bool = True
    #: How many slowest complete traces the journal retains as exemplars.
    trace_exemplars: int = 8
    #: Admission control at the service front (None = admit everything).
    #: Only cache *misses* are gated: a hit costs microseconds and shedding
    #: it would hurt the caller without protecting the decode path.
    admission: AdmissionPolicy | None = None


class RoutingService:
    """Serves schema-routing requests from a trained router."""

    def __init__(self, router: SchemaRouter, config: ServingConfig | None = None,
                 admission: AdmissionController | None = None) -> None:
        if not router.is_trained:
            raise ValueError("RoutingService requires a trained router "
                             "(train with fit() or load a checkpoint)")
        self.router = router
        self.config = config or ServingConfig()
        #: A caller-built controller wins (tests inject clocks through it);
        #: otherwise the config's policy builds one; otherwise admission off.
        self.admission = admission
        if self.admission is None and self.config.admission is not None:
            self.admission = AdmissionController(self.config.admission)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(metrics=self.metrics,
                             enabled=self.config.enable_tracing,
                             max_slow_traces=self.config.trace_exemplars)
        self.cache: RouteCache | None = None
        if self.config.enable_cache:
            self.cache = RouteCache(max_size=self.config.cache_size,
                                    ttl_seconds=self.config.cache_ttl_seconds)
        self._route_lock = threading.Lock()
        self._batcher: MicroBatcher | None = None
        if self.config.enable_batching:
            self._batcher = MicroBatcher(
                self._route_batch_locked,
                BatcherConfig(max_batch_size=self.config.max_batch_size,
                              max_wait_seconds=self.config.max_wait_seconds),
                on_batch=self.metrics.observe_batch,
            )
        self._closed = False

    # -- construction --------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path: str | Path,
                        config: ServingConfig | None = None) -> "RoutingService":
        """Boot a service from a checkpoint directory — no training run."""
        return cls(SchemaRouter.from_checkpoint(path), config=config)

    # -- request path --------------------------------------------------------
    def _admit(self, weight: int, question_chars: int) -> None:
        """Pass ``weight`` cache-missing requests through admission control.

        A rejection is counted (``admission_rejected``), journaled as a
        zero-stage trace with the machine-readable reason (so shed traffic
        is visible in the trace journal, not just as a counter), and
        re-raised — the typed :class:`AdmissionRejected` is the bounded-
        latency degradation contract with the caller.
        """
        if self.admission is None:
            return
        queue_depth = (self._batcher.queue_depth()
                       if self._batcher is not None else None)
        try:
            self.admission.admit(weight=weight, queue_depth=queue_depth,
                                 queue_capacity=self.config.max_batch_size)
        except AdmissionRejected as rejection:
            self.metrics.increment("admission_rejected", weight)
            trace = self.tracer.start_trace("request",
                                            question_chars=question_chars,
                                            admission=rejection.reason)
            if trace is not None:
                trace.finish(status="rejected", error=str(rejection))
            raise

    def _route_batch_locked(self, questions: Sequence[str],
                            max_candidates: int | None,
                            traces: Sequence | None = None) -> list[list[SchemaRoute]]:
        with self._route_lock:
            return self.router.route_batch(list(questions),
                                           max_candidates=max_candidates,
                                           traces=traces)

    def submit(self, question: str,
               max_candidates: int | None = None) -> list[SchemaRoute]:
        """Route one question (blocking); safe to call from many threads."""
        if self._closed:
            raise RuntimeError("the service has been closed")
        started = time.monotonic()
        max_candidates = max_candidates or self.config.max_candidates
        self.metrics.increment("requests")
        if self.cache is not None:
            cached = self.cache.get(question, variant=max_candidates)
            if cached is not None:
                self.metrics.increment("cache_hits")
                self.metrics.observe_latency(time.monotonic() - started)
                return cached
        # Admission happens after the cache and before any queueing: a shed
        # request costs one counter bump and a typed exception, never a
        # batcher slot or a decode.
        self._admit(1, question_chars=len(question))
        # The trace starts only on a cache miss: a hit has no stages worth
        # recording, and the hit path is a microsecond-scale dict lookup that
        # a per-request trace allocation would dominate (the tracing layer's
        # overhead budget is <= 5% of serving throughput).  Cache
        # effectiveness is observable through the counters instead.
        trace = self.tracer.start_trace("request", question_chars=len(question))
        try:
            if self._batcher is not None:
                routes = self._batcher.submit(question, max_candidates,
                                              trace=trace).result()
            else:
                routes = self._route_batch_locked(
                    [question], max_candidates,
                    traces=[trace] if trace is not None else None)[0]
            if self.cache is not None:
                self.cache.put(question, routes, variant=max_candidates)
            self.metrics.increment("routed")
            self.metrics.observe_latency(time.monotonic() - started)
            return routes
        except BaseException as exc:
            self.metrics.increment("errors")
            if trace is not None:
                trace.finish(status="error", error=f"{type(exc).__name__}: {exc}")
                trace = None
            raise
        finally:
            if trace is not None:
                trace.finish()

    def submit_many(self, questions: Sequence[str],
                    max_candidates: int | None = None,
                    trace=None) -> list[list[SchemaRoute]]:
        """Route several questions; repeats are answered from cache, the rest
        go through the batcher as one coalesced wave.

        A caller-provided ``trace`` (e.g. a cluster dispatcher's scatter scope)
        is used for the wave's spans but never finished here; without one, the
        service starts and finishes its own ``request_wave`` trace -- but only
        when the wave actually decodes something (see ``submit()``: fully
        cached waves stay trace-free)."""
        if self._closed:
            raise RuntimeError("the service has been closed")
        started = time.monotonic()
        max_candidates = max_candidates or self.config.max_candidates
        self.metrics.increment("requests", len(questions))
        results: list[list[SchemaRoute] | None]
        if self.cache is not None:
            # One lock acquisition for the whole wave's cache probes.
            results = self.cache.get_many(questions, variant=max_candidates)
            pending = [index for index, cached in enumerate(results)
                       if cached is None]
        else:
            results = [None] * len(questions)
            pending = list(range(len(questions)))
        if len(pending) < len(questions):
            # One counter bump for the whole wave: per-hit increments cost a
            # lock acquisition each, which dominates a cache-hot wave.
            self.metrics.increment("cache_hits", len(questions) - len(pending))
        if pending:
            # One atomic decision for the wave: either the whole cache-missing
            # remainder is admitted or the wave fails fast as a unit (mixing
            # routed answers with per-question rejections in one return value
            # would push the shedding contract onto every caller).
            self._admit(len(pending),
                        question_chars=sum(len(questions[index])
                                           for index in pending))
        owned = None
        if pending and trace is None:
            trace = owned = self.tracer.start_trace("request_wave",
                                                    questions=len(questions))
        if trace is not None:
            trace.annotate(cache_hits=len(questions) - len(pending))
        try:
            self._route_pending(questions, results, pending, max_candidates,
                                trace)
        except BaseException as exc:
            self.metrics.increment("errors", len(pending))
            if owned is not None:
                owned.finish(status="error", error=f"{type(exc).__name__}: {exc}")
                owned = None
            raise
        finally:
            if owned is not None:
                owned.finish()
        elapsed = time.monotonic() - started
        if questions:
            self.metrics.observe_latency(elapsed / len(questions),
                                         count=len(questions))
        return results  # type: ignore[return-value]

    def _route_pending(self, questions: Sequence[str], results: list,
                       pending: list[int], max_candidates: int | None,
                       trace) -> None:
        """Decode the cache-missing ``pending`` indices into ``results``."""
        # Within one call, identical pending questions are routed once.
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []
        unique_pending: list[int] = []
        for index in pending:
            question = questions[index]
            if question in first_index:
                duplicates.append((index, first_index[question]))
            else:
                first_index[question] = index
                unique_pending.append(index)
        if unique_pending:
            if self._batcher is not None:
                futures = [(index, self._batcher.submit(questions[index], max_candidates,
                                                        trace=trace))
                           for index in unique_pending]
                for index, future in futures:
                    results[index] = future.result()
            else:
                routed = self._route_batch_locked(
                    [questions[index] for index in unique_pending], max_candidates,
                    traces=([trace] * len(unique_pending)
                            if trace is not None else None))
                for index, routes in zip(unique_pending, routed):
                    results[index] = routes
            for index in unique_pending:
                if self.cache is not None:
                    self.cache.put(questions[index], results[index],
                                   variant=max_candidates)
                self.metrics.increment("routed")
        for index, source in duplicates:
            results[index] = results[source]

    # -- catalog change hook -------------------------------------------------
    def notify_catalog_changed(self) -> None:
        """Invalidate cached routes after the underlying catalog changes."""
        if self.cache is not None:
            self.cache.bump_version()

    def replace_router(self, router: SchemaRouter,
                       invalidate_cache: bool = True) -> None:
        """Swap in a new trained router (e.g. after a shard rebalance).

        The swap happens under the route lock, so in-flight batches finish on
        the old router and every later request decodes with the new one.  By
        default the route cache is version-bumped, since answers cached for the
        old catalog may no longer be valid.
        """
        if not router.is_trained:
            raise ValueError("replace_router requires a trained router")
        with self._route_lock:
            self.router = router
        if invalidate_cache:
            self.notify_catalog_changed()

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-round-trip-safe snapshot (it may cross the cluster wire
        protocol verbatim): counters, QPS, latency percentiles, cache and
        batcher accounting, plus the size of the catalog slice this service
        decodes over -- which is what identifies a shard worker when the
        snapshot is read far from the process that produced it."""
        snapshot = self.metrics.snapshot()
        snapshot["num_databases"] = len(self.router.graph.catalog.database_names)
        snapshot["cache"] = self.cache.stats() if self.cache is not None else None
        requests = snapshot["counters"].get("requests", 0)
        hits = snapshot["counters"].get("cache_hits", 0)
        snapshot["cache_hit_rate"] = round(hits / requests, 4) if requests else 0.0
        if self._batcher is not None:
            snapshot["batcher"] = {
                "batches_dispatched": self._batcher.batches_dispatched,
                "requests_dispatched": self._batcher.requests_dispatched,
            }
        else:
            snapshot["batcher"] = None
        snapshot["traces"] = self.tracer.journal.stats()
        snapshot["admission"] = (self.admission.stats()
                                 if self.admission is not None else None)
        return snapshot

    def health(self, policy: HealthPolicy | None = None) -> HealthReport:
        """This service's verdict: error rate, batcher backlog, route cache.

        The report nests one ``route_cache`` child (when caching is on);
        child verdicts follow the rollup precedence in
        :mod:`repro.obs.health`."""
        policy = policy or HealthPolicy()
        own = HealthReport(component="routing_service")
        if self._closed:
            own.degrade("failing", "service is closed")
            return own
        error_rate_health(own, self.metrics.counters(), policy)
        if self._batcher is not None:
            queue_health(own, self._batcher.queue_depth(),
                         self.config.max_batch_size, policy)
        if self.admission is not None:
            admission_health(own, self.admission.stats())
        children = []
        if self.cache is not None:
            children.append(cache_health(self.cache.stats(), policy))
        return rollup("routing_service", children, own=own)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None:
            self._batcher.close()

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
