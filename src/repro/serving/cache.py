"""Thread-safe LRU route cache with TTL and catalog-version invalidation.

Routing is deterministic given a trained router, so identical questions can be
served from memory.  Keys are the *normalized* question text (the router's own
word tokenization), which folds case, punctuation, and whitespace variants of
the same question onto one entry.

Invalidation happens two ways:

* **TTL** -- entries older than ``ttl_seconds`` are dropped on access;
* **catalog version** -- every entry records the cache's catalog version at
  insert time; :meth:`RouteCache.bump_version` (called when the underlying
  catalog changes) makes all older entries stale in O(1).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

from repro.utils.text import tokenize_text


@dataclass
class _Entry:
    value: object
    expires_at: float | None
    version: int


@lru_cache(maxsize=8192)
def normalize_question(question: str) -> str:
    """Canonical cache key: the question's word tokens joined by single spaces.

    Memoized on the exact input text: served traffic repeats question strings
    (that is why the route cache exists), and re-tokenizing on every lookup
    costs more than the cache probe itself.
    """
    return " ".join(tokenize_text(question))


class RouteCache:
    """LRU mapping ``normalized question -> routes`` with full hit accounting."""

    def __init__(self, max_size: int = 2048, ttl_seconds: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable)")
        self.max_size = max_size
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self._version = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    # -- core operations -----------------------------------------------------
    @staticmethod
    def _key(question: str, variant: object = None) -> str:
        """Cache key: the normalized question, qualified by an optional request
        variant (e.g. ``max_candidates``) so differently-shaped answers to the
        same question never alias."""
        key = normalize_question(question)
        return key if variant is None else f"{key}\x00{variant}"

    def get(self, question: str, variant: object = None) -> object | None:
        """Cached routes for ``question``, or ``None`` on miss/stale entry."""
        key = self._key(question, variant)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.version != self._version:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def get_many(self, questions: Sequence[str],
                 variant: object = None) -> list[object | None]:
        """Batched :meth:`get`: one lock acquisition for a whole wave.

        Returns one entry per question (``None`` on miss), with identical
        hit/miss/TTL/version accounting to per-question ``get`` calls.  On a
        cache-hot wave the per-question lock handshake costs more than the
        lookups themselves, which matters to shard workers whose every
        scatter frame begins with a wave of cache probes.
        """
        keys = [self._key(question, variant) for question in questions]
        now = self._clock() if self.ttl_seconds is not None else None
        values: list[object | None] = []
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                    values.append(None)
                elif entry.version != self._version:
                    del self._entries[key]
                    self.invalidations += 1
                    self.misses += 1
                    values.append(None)
                elif entry.expires_at is not None and now is not None \
                        and now >= entry.expires_at:
                    del self._entries[key]
                    self.expirations += 1
                    self.misses += 1
                    values.append(None)
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    values.append(entry.value)
        return values

    def put(self, question: str, routes: object, variant: object = None) -> None:
        key = self._key(question, variant)
        expires_at = None
        if self.ttl_seconds is not None:
            expires_at = self._clock() + self.ttl_seconds
        with self._lock:
            self._entries[key] = _Entry(value=routes, expires_at=expires_at,
                                        version=self._version)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    # -- invalidation --------------------------------------------------------
    @property
    def catalog_version(self) -> int:
        return self._version

    def bump_version(self) -> int:
        """Invalidate every current entry (the catalog changed); O(1)."""
        with self._lock:
            self._version += 1
            return self._version

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Current keys, least- to most-recently used (for tests/debugging)."""
        with self._lock:
            return list(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "catalog_version": self._version,
        }
