"""A zero-dependency ops endpoint over ``http.server``.

:class:`OpsServer` wraps a :class:`repro.obs.monitor.Monitor` (and through
it any ``RoutingService`` or ``ClusterRoutingService``) in a tiny threaded
HTTP daemon:

==============  ==============================================================
``/healthz``    live health verdict; **200** only when ``ok``, **503** when
                degraded/failing (load balancers need the status code, not
                the body)
``/metrics``    live ``stats()`` in Prometheus text format (PR-6 exporter,
                with counter/histogram typing)
``/slo``        per-spec burn rates and firing state
``/alerts``     active alerts + the bounded fire/resolve event journal
``/traces``     trace-journal counters + the retained slowest exemplars
``/stats``      the raw ``stats()`` snapshot as JSON
==============  ==============================================================

Everything is served from the live objects — no files, no sockets beyond
the listener, no dependencies beyond the standard library.  Runnable
standalone against any checkpoint::

    python -m repro.obs.httpd --checkpoint ckpt/ --port 8321
    python -m repro.obs.httpd --cluster-checkpoint cluster/ --port 8321
    curl -s localhost:8321/healthz | python -m json.tool
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import to_prometheus
from repro.obs.monitor import Monitor


class OpsServer:
    """The ops HTTP daemon for one monitor; bind with port 0 for ephemeral."""

    def __init__(self, monitor: Monitor, host: str = "127.0.0.1",
                 port: int = 0, prefix: str = "repro") -> None:
        self.monitor = monitor
        handler = _make_handler(monitor, prefix)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OpsServer":
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._server.serve_forever,
                                            name="repro-obs-httpd", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, close the listener, and join the serve thread."""
        self._server.shutdown()
        self._server.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)

    def __enter__(self) -> "OpsServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _make_handler(monitor: Monitor, prefix: str):
    class OpsHandler(BaseHTTPRequestHandler):
        #: Our close() joins threads; hanging on a slow peer would wedge it.
        timeout = 30

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # an ops endpoint polled every few seconds must stay quiet

        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, payload) -> None:
            body = json.dumps(payload, indent=2, sort_keys=True,
                              default=str).encode("utf-8")
            self._send(code, body, "application/json")

        def do_GET(self) -> None:  # noqa: N802 - http.server's casing
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/healthz":
                    report = monitor.check_now()
                    self._send_json(200 if report.is_ok else 503,
                                    report.to_dict())
                elif path == "/metrics":
                    text = to_prometheus(monitor.service_stats(), prefix=prefix)
                    self._send(200, text.encode("utf-8"),
                               "text/plain; version=0.0.4")
                elif path == "/slo":
                    self._send_json(200, {"specs": monitor.engine.status(),
                                          "monitor": monitor.summary()})
                elif path == "/alerts":
                    self._send_json(200, {"active": monitor.journal.active(),
                                          "events": monitor.journal.events(),
                                          "stats": monitor.journal.stats()})
                elif path == "/traces":
                    journal = monitor.service.tracer.journal
                    self._send_json(200, {"stats": journal.stats(),
                                          "slowest": journal.slowest()})
                elif path == "/stats":
                    self._send_json(200, monitor.service_stats())
                elif path == "/":
                    self._send_json(200, {"endpoints": [
                        "/healthz", "/metrics", "/slo", "/alerts",
                        "/traces", "/stats"]})
                else:
                    self._send_json(404, {"error": f"no such endpoint: {path}"})
            except BrokenPipeError:  # peer went away mid-reply; nothing to do
                pass
            except Exception as error:
                # The probe path must degrade to a 500, never kill the server.
                try:
                    self._send_json(500, {"error": f"{type(error).__name__}: "
                                                   f"{error}"})
                except OSError:
                    pass

    return OpsHandler


# -- CLI -----------------------------------------------------------------------
def _load_specs(path: str | None):
    """SLO specs from a JSON file (a list of SloSpec-kwarg dicts), or the
    defaults."""
    from repro.obs.slo import SloSpec, default_slo_specs

    if path is None:
        return default_slo_specs()
    with open(path, "r", encoding="utf-8") as handle:
        return [SloSpec(**entry) for entry in json.load(handle)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.httpd",
        description="Serve /healthz, /metrics, /slo, /alerts, /traces, and "
                    "/stats for a checkpointed routing service.")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--checkpoint", metavar="DIR",
                        help="boot a RoutingService from this router checkpoint")
    source.add_argument("--cluster-checkpoint", metavar="DIR",
                        help="boot a ClusterRoutingService from this cluster "
                             "checkpoint")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--interval", type=float, default=5.0,
                        help="monitor tick interval in seconds (default 5)")
    parser.add_argument("--slo", metavar="PATH", default=None,
                        help="JSON file with a list of SloSpec fields "
                             "(default: built-in latency/error-rate specs)")
    parser.add_argument("--prefix", default="repro",
                        help="metric-name prefix for /metrics (default: repro)")
    args = parser.parse_args(argv)

    if args.checkpoint is not None:
        from repro.serving import RoutingService

        service = RoutingService.from_checkpoint(args.checkpoint)
    else:
        from repro.cluster import ClusterRoutingService

        service = ClusterRoutingService.from_checkpoint(args.cluster_checkpoint)
    monitor = Monitor(service, specs=_load_specs(args.slo),
                      interval_seconds=args.interval)
    server = OpsServer(monitor, host=args.host, port=args.port,
                       prefix=args.prefix)
    monitor.start()
    server.start()
    print(f"ops endpoint listening on {server.url} "
          f"(/healthz /metrics /slo /alerts /traces /stats)", file=sys.stderr,
          flush=True)
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        monitor.close()
        service.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
