"""The active monitor: snapshot → evaluate → journal, on a loop.

:class:`Monitor` attaches to anything with ``stats()`` and ``health()``
(a :class:`repro.serving.RoutingService` or a
:class:`repro.cluster.ClusterRoutingService`) and periodically

1. takes a ``stats()`` snapshot,
2. computes the bottom-up :class:`~repro.obs.health.HealthReport`,
3. feeds the snapshot to the :class:`~repro.obs.slo.SloEngine`
   (fires / resolves burn-rate alerts in the shared journal),
4. runs the per-stage EWMA baseline tracker and journals any regressions
   as auto-resolving ``warn`` alerts named ``baseline:<stage>``.

The loop runs on one daemon thread started with :meth:`start` and stopped
with a clean, joining :meth:`close`; :meth:`tick` is public so tests (and
the ops daemon's CLI) can drive evaluation with an injected clock and no
thread at all.  A tick that raises is counted (``tick_errors``) and never
kills the loop — a monitoring layer that dies with its patient is useless.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.obs.health import HealthPolicy, HealthReport
from repro.obs.slo import (
    AlertJournal,
    EwmaBaselineTracker,
    SloEngine,
    SloSpec,
    default_slo_specs,
)


class Monitor:
    """Periodic health/SLO evaluation over one service."""

    def __init__(self, service, specs: Sequence[SloSpec] | None = None,
                 interval_seconds: float = 5.0,
                 policy: HealthPolicy | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 journal: AlertJournal | None = None,
                 baseline: EwmaBaselineTracker | None = None,
                 track_baselines: bool = True) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.service = service
        self.interval_seconds = interval_seconds
        self.policy = policy or HealthPolicy()
        self._clock = clock
        self.journal = journal if journal is not None else AlertJournal(clock=clock)
        self.engine = SloEngine(
            default_slo_specs() if specs is None else list(specs),
            clock=clock, journal=self.journal)
        self.baseline = baseline if baseline is not None else (
            EwmaBaselineTracker() if track_baselines else None)
        self.ticks = 0
        self.tick_errors = 0
        self.observer_errors = 0
        self.last_error: str | None = None
        self._lock = threading.Lock()
        self._latest: dict | None = None
        self._observers: list[Callable[[dict], None]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- observers -----------------------------------------------------------
    def add_observer(self, observer: Callable[[dict], None]) -> None:
        """Subscribe ``observer(latest)`` to every successful tick.

        This is how the control plane rides the monitor: a
        :class:`repro.control.Controller` attaches here and turns each
        evaluation (snapshot + SLO status) into corrective action.  An
        observer that raises is counted in ``observer_errors`` and never
        breaks the tick — the monitor's first duty is still observing.
        """
        with self._lock:
            self._observers.append(observer)

    def _notify_observers(self, latest: dict) -> None:
        with self._lock:
            observers = list(self._observers)
        for observer in observers:
            try:
                observer(latest)
            except Exception as error:
                with self._lock:
                    self.observer_errors += 1
                    self.last_error = f"{type(error).__name__}: {error}"

    # -- evaluation ----------------------------------------------------------
    def tick(self) -> dict | None:
        """One snapshot → evaluate → journal pass; returns what it stored."""
        try:
            snapshot = self.service.stats()
            health = self.service.health(self.policy)
            events = self.engine.observe(snapshot)
            if self.baseline is not None:
                events += self._observe_baselines(snapshot.get("stages") or {})
            latest = {
                "at": self._clock(),
                "health": health.to_dict(),
                "slo": self.engine.status(),
                "events": events,
                "snapshot": snapshot,
            }
        except Exception as error:
            with self._lock:
                self.ticks += 1
                self.tick_errors += 1
                self.last_error = f"{type(error).__name__}: {error}"
            return None
        with self._lock:
            self.ticks += 1
            self._latest = latest
        self._notify_observers(latest)
        return latest

    def _observe_baselines(self, stages: dict) -> list[dict]:
        """Journal EWMA regressions; resolve the ones that went quiet."""
        regressions = self.baseline.observe(stages)
        flagged = {f"baseline:{entry['stage']}" for entry in regressions}
        events = []
        for entry in regressions:
            event = self.journal.fire(
                f"baseline:{entry['stage']}", severity="warn",
                message=f"stage {entry['stage']} p95 {entry['p95_ms']}ms "
                        f"above EWMA baseline {entry['baseline_ms']}ms "
                        f"(threshold {entry['threshold_ms']}ms)",
                value=entry["p95_ms"], target=entry["threshold_ms"])
            if event is not None:
                events.append(event)
        for active in self.journal.active():
            name = active["name"]
            if name.startswith("baseline:") and name not in flagged:
                event = self.journal.resolve(
                    name, message="stage p95 back under its baseline threshold")
                if event is not None:
                    events.append(event)
        return events

    # -- live probes (the ops endpoint's read side) --------------------------
    def check_now(self) -> HealthReport:
        """A fresh health verdict right now — not the last tick's cached one,
        so ``/healthz`` sees a just-killed shard immediately."""
        return self.service.health(self.policy)

    def service_stats(self) -> dict:
        return self.service.stats()

    def latest(self) -> dict | None:
        """The last successful tick's stored evaluation (None before one)."""
        with self._lock:
            return self._latest

    def summary(self) -> dict:
        with self._lock:
            latest_at = self._latest["at"] if self._latest else None
            ticks = self.ticks
            tick_errors = self.tick_errors
            observer_errors = self.observer_errors
            observers = len(self._observers)
            last_error = self.last_error
        return {
            "running": self.is_running(),
            "interval_seconds": self.interval_seconds,
            "ticks": ticks,
            "tick_errors": tick_errors,
            "observers": observers,
            "observer_errors": observer_errors,
            "last_error": last_error,
            "last_tick_at": latest_at,
            "alerts": self.journal.stats(),
        }

    # -- lifecycle -----------------------------------------------------------
    def is_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "Monitor":
        """Start the background loop (idempotent); first tick is immediate."""
        if self.is_running():
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="repro-obs-monitor",
                                        daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            self.tick()
            if self._stop.wait(self.interval_seconds):
                return

    def close(self) -> None:
        """Stop and join the loop thread; safe to call twice."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)

    def __enter__(self) -> "Monitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
