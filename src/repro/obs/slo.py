"""Declarative SLOs with multi-window burn-rate alerting over stats snapshots.

An :class:`SloSpec` declares one objective over a signal the PR-6
instrumentation already carries — latency percentiles, the error / request
counters, route-cache effectiveness, the dispatcher's escalation counter.
The :class:`SloEngine` is fed ``stats()`` snapshots (by the monitor thread,
or by hand in tests) and keeps a bounded history of *points*: cumulative
counter readings plus the latency percentiles at each observation.  From
those it derives **windowed** rates — counter deltas between now and the
youngest point at least ``window`` seconds old, latency readings averaged
over the window — and judges each spec with classic multi-window burn-rate
logic:

* **fire** when both the fast window (default 60 s) and the slow window
  (default 300 s) burn above their thresholds — the fast window makes the
  alert responsive, the slow window keeps one latency spike from paging;
* **resolve** when the fast window's burn drops below the resolve
  threshold (a window with no traffic burns 0: no traffic is no violation).

Burn is ``value / target`` for upper-bounded objectives (latency, error
rate, escalation rate) and ``target / value`` for lower-bounded ones (cache
hit rate), so ``burn >= 1`` always means "out of objective".

Fires and resolves land in a bounded :class:`AlertJournal` that deduplicates
while an alert is active (repeat fires update the burn and bump a
``suppressed`` counter instead of appending events).

:class:`EwmaBaselineTracker` covers the signals nobody wrote an SLO for:
it learns an exponentially-weighted mean/variance per stage-latency p95 and
flags readings far above their own baseline, producing ``warn``-severity
regressions the monitor journals like any other alert.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

#: Signals a spec may target, with their objective direction.
SLO_METRICS = {
    "latency_p95_ms": "upper",
    "latency_p99_ms": "upper",
    "error_rate": "upper",
    "cache_hit_rate": "lower",
    "escalation_rate": "upper",
}

#: Cap for the burn of a lower-bounded objective whose observed value is 0
#: (infinite burn is real but JSON is not the place for ``inf``).
MAX_BURN = 1e6


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective plus its burn-rate alerting windows."""

    name: str
    metric: str
    target: float
    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 300.0
    #: Fire when the fast window burns at >= ``fast_burn`` AND the slow
    #: window at >= ``slow_burn``.
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    #: Resolve when the fast window's burn drops below this.
    resolve_burn: float = 1.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise ValueError(f"metric must be one of {sorted(SLO_METRICS)}, "
                             f"not {self.metric!r}")
        if self.target <= 0:
            raise ValueError("target must be positive")
        if not 0 < self.fast_window_seconds <= self.slow_window_seconds:
            raise ValueError("need 0 < fast_window_seconds <= slow_window_seconds")
        if self.fast_burn <= 0 or self.slow_burn <= 0 or self.resolve_burn <= 0:
            raise ValueError("burn thresholds must be positive")
        if self.severity not in ("page", "warn"):
            raise ValueError("severity must be 'page' or 'warn'")

    @property
    def kind(self) -> str:
        """Objective direction: ``upper`` (ceiling) or ``lower`` (floor)."""
        return SLO_METRICS[self.metric]

    def burn(self, value: float) -> float:
        """How fast this objective's budget is burning at ``value``."""
        if self.kind == "upper":
            return value / self.target
        if value <= 0:
            return MAX_BURN
        return min(self.target / value, MAX_BURN)

    def to_dict(self) -> dict:
        return {"name": self.name, "metric": self.metric, "target": self.target,
                "kind": self.kind,
                "fast_window_seconds": self.fast_window_seconds,
                "slow_window_seconds": self.slow_window_seconds,
                "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
                "resolve_burn": self.resolve_burn, "severity": self.severity}


def default_slo_specs() -> list[SloSpec]:
    """Lenient defaults for the ops daemon: a healthy seeded bench stays at
    zero alerts, sustained overload or real breakage fires."""
    return [
        SloSpec(name="latency-p95", metric="latency_p95_ms", target=500.0),
        SloSpec(name="error-rate", metric="error_rate", target=0.05),
    ]


@dataclass(frozen=True)
class _Point:
    """One observation: cumulative counters + current latency percentiles."""

    at: float
    requests: int
    errors: int
    cache_hits: int
    cache_misses: int
    escalations: int
    p95_ms: float
    p99_ms: float


class AlertJournal:
    """Bounded fire/resolve event log with active-alert deduplication."""

    def __init__(self, max_events: int = 256,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=max_events)
        self._active: dict[str, dict] = {}
        self.fired = 0
        self.resolved = 0
        self.suppressed = 0

    def fire(self, name: str, *, severity: str = "page", message: str = "",
             burn: float | None = None, value: float | None = None,
             target: float | None = None) -> dict | None:
        """Record a firing alert; a repeat fire of an active alert only
        refreshes its numbers (returns None, no new event)."""
        with self._lock:
            now = self._clock()
            active = self._active.get(name)
            if active is not None:
                active.update(burn=burn, value=value, last_seen_at=now)
                active["fire_count"] += 1
                self.suppressed += 1
                return None
            event = {"kind": "fire", "name": name, "at": now,
                     "severity": severity, "message": message,
                     "burn": burn, "value": value, "target": target}
            self._events.append(event)
            self._active[name] = {"name": name, "severity": severity,
                                  "message": message, "burn": burn,
                                  "value": value, "target": target,
                                  "fired_at": now, "last_seen_at": now,
                                  "fire_count": 1}
            self.fired += 1
            return event

    def resolve(self, name: str, *, message: str = "",
                burn: float | None = None) -> dict | None:
        """Record recovery of an active alert (no-op when it is not active)."""
        with self._lock:
            active = self._active.pop(name, None)
            if active is None:
                return None
            event = {"kind": "resolve", "name": name, "at": self._clock(),
                     "severity": active["severity"], "message": message,
                     "burn": burn, "value": None, "target": active["target"],
                     "active_seconds": round(self._clock() - active["fired_at"], 3)}
            self._events.append(event)
            self.resolved += 1
            return event

    def is_active(self, name: str) -> bool:
        with self._lock:
            return name in self._active

    def active(self) -> list[dict]:
        with self._lock:
            return [dict(alert) for alert in self._active.values()]

    def events(self) -> list[dict]:
        with self._lock:
            return [dict(event) for event in self._events]

    def stats(self) -> dict:
        with self._lock:
            return {"active": len(self._active), "events": len(self._events),
                    "fired": self.fired, "resolved": self.resolved,
                    "suppressed": self.suppressed}


class SloEngine:
    """Evaluates :class:`SloSpec`s over a bounded history of snapshots."""

    def __init__(self, specs: Sequence[SloSpec],
                 clock: Callable[[], float] = time.monotonic,
                 max_points: int = 512,
                 journal: AlertJournal | None = None) -> None:
        self.specs = list(specs)
        self._clock = clock
        self._points: deque[_Point] = deque(maxlen=max_points)
        self.journal = journal if journal is not None else AlertJournal(clock=clock)

    # -- feeding -------------------------------------------------------------
    @staticmethod
    def _point_from_snapshot(snapshot: dict, at: float) -> _Point:
        counters = snapshot.get("counters") or {}
        cache = snapshot.get("cache") or {}
        latency = snapshot.get("latency") or {}
        dispatcher = snapshot.get("dispatcher") or {}
        return _Point(
            at=at,
            requests=int(counters.get("requests", 0)),
            errors=int(counters.get("errors", 0)),
            cache_hits=int(cache.get("hits", counters.get("cache_hits", 0))),
            cache_misses=int(cache.get("misses", 0)),
            escalations=int(dispatcher.get("escalations", 0)),
            p95_ms=float(latency.get("p95_ms", 0.0)),
            p99_ms=float(latency.get("p99_ms", 0.0)),
        )

    def observe(self, snapshot: dict) -> list[dict]:
        """Fold one snapshot in and run every spec; returns new fire/resolve
        events (deduped repeats return nothing)."""
        now = self._clock()
        self._points.append(self._point_from_snapshot(snapshot, now))
        events: list[dict] = []
        for status in self.evaluate():
            spec = status["spec_object"]
            if status["should_fire"]:
                event = self.journal.fire(
                    spec.name, severity=spec.severity,
                    message=f"{spec.metric}={status['fast_value']} burns "
                            f"{status['fast_burn']}x fast / "
                            f"{status['slow_burn']}x slow against "
                            f"target {spec.target}",
                    burn=status["fast_burn"], value=status["fast_value"],
                    target=spec.target)
                if event is not None:
                    events.append(event)
            elif status["should_resolve"] and self.journal.is_active(spec.name):
                event = self.journal.resolve(
                    spec.name, burn=status["fast_burn"],
                    message=f"{spec.metric} back within target {spec.target}")
                if event is not None:
                    events.append(event)
        return events

    # -- windowed readings ---------------------------------------------------
    def _window_points(self, window_seconds: float,
                       now: float) -> tuple[_Point | None, _Point | None, list[_Point]]:
        """(base, current, in-window points) for one window ending at ``now``.

        ``base`` is the youngest point at least ``window_seconds`` old — the
        subtrahend for counter deltas; with history younger than the window,
        the oldest point stands in (rates are then over the actual span)."""
        if not self._points:
            return None, None, []
        cutoff = now - window_seconds
        base = None
        inside: list[_Point] = []
        for point in self._points:
            if point.at <= cutoff:
                base = point
            else:
                inside.append(point)
        if base is None:
            base = self._points[0]
            inside = [point for point in inside if point is not base]
        return base, self._points[-1], inside

    def _window_value(self, spec: SloSpec, window_seconds: float,
                      now: float) -> float | None:
        """The spec's signal over one window; None when unmeasurable."""
        base, current, inside = self._window_points(window_seconds, now)
        if base is None or current is None:
            return None
        if spec.metric in ("latency_p95_ms", "latency_p99_ms"):
            attr = "p95_ms" if spec.metric == "latency_p95_ms" else "p99_ms"
            readings = [getattr(point, attr) for point in inside] \
                or [getattr(current, attr)]
            return sum(readings) / len(readings)
        requests = current.requests - base.requests
        if spec.metric == "error_rate":
            if requests <= 0:
                return None
            return (current.errors - base.errors) / requests
        if spec.metric == "escalation_rate":
            if requests <= 0:
                return None
            return (current.escalations - base.escalations) / requests
        # cache_hit_rate
        lookups = (current.cache_hits - base.cache_hits) \
            + (current.cache_misses - base.cache_misses)
        if lookups <= 0:
            return None
        return (current.cache_hits - base.cache_hits) / lookups

    # -- judging -------------------------------------------------------------
    def evaluate(self) -> list[dict]:
        """Burn + state per spec (the ``/slo`` endpoint's payload, minus the
        internal ``spec_object`` key)."""
        now = self._clock()
        statuses = []
        for spec in self.specs:
            fast_value = self._window_value(spec, spec.fast_window_seconds, now)
            slow_value = self._window_value(spec, spec.slow_window_seconds, now)
            fast_burn = spec.burn(fast_value) if fast_value is not None else 0.0
            slow_burn = spec.burn(slow_value) if slow_value is not None else 0.0
            should_fire = (fast_value is not None and slow_value is not None
                           and fast_burn >= spec.fast_burn
                           and slow_burn >= spec.slow_burn)
            statuses.append({
                "name": spec.name,
                "metric": spec.metric,
                "target": spec.target,
                "severity": spec.severity,
                "fast_value": round(fast_value, 6) if fast_value is not None else None,
                "slow_value": round(slow_value, 6) if slow_value is not None else None,
                "fast_burn": round(fast_burn, 4),
                "slow_burn": round(slow_burn, 4),
                "firing": self.journal.is_active(spec.name),
                "should_fire": should_fire,
                "should_resolve": fast_burn < spec.resolve_burn,
                "spec_object": spec,
            })
        return statuses

    def status(self) -> list[dict]:
        """JSON-safe :meth:`evaluate` (what ``/slo`` serves)."""
        statuses = []
        for status in self.evaluate():
            status = dict(status)
            status.pop("spec_object")
            status.pop("should_fire")
            status.pop("should_resolve")
            statuses.append(status)
        return statuses


class EwmaBaselineTracker:
    """Flags stage-latency regressions against learned EWMA baselines.

    Per stage, an exponentially-weighted mean and variance of the p95
    reading; a reading is a regression when it exceeds the baseline by both
    ``sigma`` standard deviations and a ``min_ratio`` multiple (the ratio
    guard keeps microsecond-scale stages from paging on scheduler noise).
    The baseline only absorbs the reading *after* judging it, so a step
    change is flagged before the tracker learns the new normal.
    """

    def __init__(self, alpha: float = 0.2, warmup: int = 5,
                 sigma: float = 3.0, min_ratio: float = 2.0) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.alpha = alpha
        self.warmup = warmup
        self.sigma = sigma
        self.min_ratio = min_ratio
        self._stages: dict[str, list[float]] = {}  # name -> [mean, var, n]

    def observe(self, stage_summaries: dict) -> list[dict]:
        """Fold one ``stages`` dict in; returns the regressions it flags."""
        regressions: list[dict] = []
        for name, summary in sorted(stage_summaries.items()):
            value = float(summary.get("p95_ms", 0.0))
            state = self._stages.get(name)
            if state is None:
                self._stages[name] = [value, 0.0, 1]
                continue
            mean, variance, seen = state
            if seen >= self.warmup:
                threshold = mean + self.sigma * math.sqrt(variance)
                if value > threshold and value > mean * self.min_ratio:
                    regressions.append({
                        "stage": name,
                        "p95_ms": round(value, 3),
                        "baseline_ms": round(mean, 3),
                        "threshold_ms": round(threshold, 3),
                    })
            delta = value - mean
            mean += self.alpha * delta
            variance = (1 - self.alpha) * (variance + self.alpha * delta * delta)
            self._stages[name] = [mean, variance, seen + 1]
        return regressions

    def baselines(self) -> dict:
        return {name: {"mean_ms": round(mean, 3),
                       "stddev_ms": round(math.sqrt(variance), 3),
                       "observations": seen}
                for name, (mean, variance, seen) in sorted(self._stages.items())}
