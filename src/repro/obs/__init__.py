"""Observability: request-scoped tracing, stage metrics, and exporters.

The serving stack records *where a request's time went* -- batcher queue,
encode, decode steps, constraint masking, scatter fan-out, wire round-trips,
merge, escalation -- as a tree of spans per request:

* :mod:`repro.obs.trace` -- :class:`Tracer` / :class:`TraceContext` /
  :class:`Span`, the bounded :class:`TraceJournal` with slow-request exemplar
  retention, and remote-span stitching for subprocess workers;
* :mod:`repro.obs.export` -- zero-dependency renderers turning any
  ``stats()`` snapshot into Prometheus text format or JSON lines, plus the
  ``python -m repro.obs.export`` CLI.

Span durations additionally feed per-stage
:class:`repro.serving.metrics.LatencyRecorder` reservoirs, so
``MetricsRegistry.snapshot()`` carries a stage-breakdown section even after
individual traces have been dropped from the journal.
"""

from repro.obs.trace import (
    ScopedTrace,
    Span,
    TraceContext,
    TraceJournal,
    Tracer,
    distinct_traces,
    maybe_span,
    stage_spans,
)

__all__ = [
    "Span",
    "ScopedTrace",
    "TraceContext",
    "TraceJournal",
    "Tracer",
    "distinct_traces",
    "maybe_span",
    "stage_spans",
    "flatten_snapshot",
    "parse_json_lines",
    "parse_prometheus",
    "to_json_lines",
    "to_prometheus",
]

#: Exporter symbols resolve lazily (PEP 562) so importing :mod:`repro.obs`
#: does not pre-import :mod:`repro.obs.export` -- ``python -m
#: repro.obs.export`` would otherwise re-execute an already-loaded module
#: and print a runpy ``RuntimeWarning`` on every CLI invocation.
_EXPORT_SYMBOLS = frozenset({
    "flatten_snapshot", "parse_json_lines", "parse_prometheus",
    "to_json_lines", "to_prometheus",
})


def __getattr__(name: str):
    if name in _EXPORT_SYMBOLS:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
