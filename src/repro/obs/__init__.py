"""Observability: request-scoped tracing, stage metrics, and exporters.

The serving stack records *where a request's time went* -- batcher queue,
encode, decode steps, constraint masking, scatter fan-out, wire round-trips,
merge, escalation -- as a tree of spans per request:

* :mod:`repro.obs.trace` -- :class:`Tracer` / :class:`TraceContext` /
  :class:`Span`, the bounded :class:`TraceJournal` with slow-request exemplar
  retention, and remote-span stitching for subprocess workers;
* :mod:`repro.obs.export` -- zero-dependency renderers turning any
  ``stats()`` snapshot into Prometheus text format or JSON lines, plus the
  ``python -m repro.obs.export`` CLI;
* :mod:`repro.obs.health` -- :class:`HealthReport` /
  :class:`HealthPolicy` and the stats-dict probes behind every layer's
  ``health()``, rolled up bottom-up into one verdict;
* :mod:`repro.obs.slo` -- declarative :class:`SloSpec`s, the multi-window
  burn-rate :class:`SloEngine`, the deduplicating :class:`AlertJournal`,
  and EWMA stage-latency baselines;
* :mod:`repro.obs.monitor` -- the background :class:`Monitor` thread
  (snapshot → evaluate → journal on a loop);
* :mod:`repro.obs.httpd` -- the ``python -m repro.obs.httpd`` ops daemon
  serving ``/healthz`` ``/metrics`` ``/slo`` ``/alerts`` ``/traces``
  ``/stats``.

Span durations additionally feed per-stage
:class:`repro.serving.metrics.LatencyRecorder` reservoirs, so
``MetricsRegistry.snapshot()`` carries a stage-breakdown section even after
individual traces have been dropped from the journal.
"""

from repro.obs.health import HealthPolicy, HealthReport, worst_status
from repro.obs.trace import (
    ScopedTrace,
    Span,
    TraceContext,
    TraceJournal,
    Tracer,
    distinct_traces,
    maybe_span,
    stage_spans,
)

__all__ = [
    "Span",
    "ScopedTrace",
    "TraceContext",
    "TraceJournal",
    "Tracer",
    "distinct_traces",
    "maybe_span",
    "stage_spans",
    "HealthPolicy",
    "HealthReport",
    "worst_status",
    "flatten_snapshot",
    "parse_json_lines",
    "parse_prometheus",
    "to_json_lines",
    "to_prometheus",
    "AlertJournal",
    "EwmaBaselineTracker",
    "SloEngine",
    "SloSpec",
    "default_slo_specs",
    "Monitor",
    "OpsServer",
]

#: Exporter / SLO / monitor / httpd symbols resolve lazily (PEP 562) so
#: importing :mod:`repro.obs` does not pre-import their modules --
#: ``python -m repro.obs.export`` and ``python -m repro.obs.httpd`` would
#: otherwise re-execute an already-loaded module and print a runpy
#: ``RuntimeWarning`` on every CLI invocation.
_LAZY_SYMBOLS = {
    "flatten_snapshot": "repro.obs.export",
    "parse_json_lines": "repro.obs.export",
    "parse_prometheus": "repro.obs.export",
    "to_json_lines": "repro.obs.export",
    "to_prometheus": "repro.obs.export",
    "AlertJournal": "repro.obs.slo",
    "EwmaBaselineTracker": "repro.obs.slo",
    "SloEngine": "repro.obs.slo",
    "SloSpec": "repro.obs.slo",
    "default_slo_specs": "repro.obs.slo",
    "Monitor": "repro.obs.monitor",
    "OpsServer": "repro.obs.httpd",
}


def __getattr__(name: str):
    module_name = _LAZY_SYMBOLS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
