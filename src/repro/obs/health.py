"""Component health probes: per-layer verdicts rolled up bottom-up.

Every serving layer implements ``health() -> HealthReport``: a verdict in
``ok`` / ``degraded`` / ``failing`` plus machine-readable reasons and the
numbers that produced them.  Reports nest — a cluster's report carries one
child per replica set, which carries one child per worker — and the parent
verdict follows a fixed precedence (:func:`rollup`):

* any ``failing`` or ``degraded`` child makes the parent at least
  ``degraded`` (the cluster still serves, a slice of it does not);
* *all* children ``failing`` makes the parent ``failing`` (nothing left to
  serve from);
* the parent's own probes can always raise the verdict further, never lower
  it.

Thresholds live in one frozen :class:`HealthPolicy` so operators tune a
single object instead of per-layer magic numbers.  The probes themselves
judge plain ``stats()`` dicts — this module imports nothing from the serving
or cluster layers, so those layers can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Verdicts, mildest first.  Order is meaningful: :func:`worst_status`
#: compares by position.
STATUSES = ("ok", "degraded", "failing")
_RANK = {status: rank for rank, status in enumerate(STATUSES)}


def worst_status(*statuses: str) -> str:
    """The most severe of the given verdicts (``ok`` when none given)."""
    worst = "ok"
    for status in statuses:
        if _RANK[status] > _RANK[worst]:
            worst = status
    return worst


@dataclass
class HealthReport:
    """One component's verdict, its evidence, and its children's reports."""

    component: str
    status: str = "ok"
    reasons: list[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)
    children: list["HealthReport"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in _RANK:
            raise ValueError(f"status must be one of {STATUSES}, "
                             f"not {self.status!r}")

    @property
    def is_ok(self) -> bool:
        return self.status == "ok"

    def degrade(self, status: str, reason: str) -> None:
        """Raise (never lower) the verdict, recording why."""
        self.status = worst_status(self.status, status)
        self.reasons.append(reason)

    def to_dict(self) -> dict:
        """A JSON-round-trip-safe rendering (what ``/healthz`` serves)."""
        return {
            "component": self.component,
            "status": self.status,
            "reasons": list(self.reasons),
            "details": dict(self.details),
            "children": [child.to_dict() for child in self.children],
        }


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds the probes judge against — one object, all layers."""

    #: Error-rate (errors / requests) bands; below ``min_requests`` the rate
    #: is not judged at all (a cold service with one failed request is not
    #: 100% broken, it is unmeasured).
    error_rate_degraded: float = 0.01
    error_rate_failing: float = 0.10
    min_requests: int = 20
    #: Route-cache hit-rate floor, judged only after ``cache_min_lookups``
    #: lookups so a cold cache is never flagged.
    cache_hit_rate_floor: float = 0.05
    cache_min_lookups: int = 50
    #: Version churn: invalidations per lookup above this ratio means the
    #: catalog version is being bumped faster than the cache can pay off.
    cache_churn_ratio: float = 0.5
    #: Batcher backlog as a multiple of ``max_batch_size``: one full batch
    #: queued is normal bursting, several is sustained overload.
    queue_depth_degraded_ratio: float = 2.0
    queue_depth_failing_ratio: float = 8.0
    #: Dispatcher per-request rate ceilings (shard timeouts / escalations,
    #: both judged against the request counter, after ``min_requests``).
    timeout_rate_degraded: float = 0.02
    timeout_rate_failing: float = 0.25
    escalation_rate_ceiling: float = 0.75
    #: A subprocess worker that has not answered anything for this long is
    #: presumed wedged; the probe re-checks with one out-of-band ping before
    #: judging.  The multiplexed transport answers pings on the child's
    #: reader thread, so the check is a real liveness signal even while
    #: route requests are in flight (the pre-multiplexing transport had to
    #: assume a busy worker was working).
    heartbeat_max_age_seconds: float = 60.0
    #: Respawn velocity: more than ``max_respawns_in_window`` fresh boots
    #: inside ``respawn_window_seconds`` is a crash loop, not recovery.
    respawn_window_seconds: float = 300.0
    max_respawns_in_window: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate_degraded <= self.error_rate_failing:
            raise ValueError("need 0 <= error_rate_degraded <= error_rate_failing")
        if not 0.0 <= self.timeout_rate_degraded <= self.timeout_rate_failing:
            raise ValueError("need 0 <= timeout_rate_degraded <= timeout_rate_failing")
        if self.queue_depth_degraded_ratio > self.queue_depth_failing_ratio:
            raise ValueError("queue_depth_degraded_ratio must not exceed "
                             "queue_depth_failing_ratio")
        if self.min_requests < 0 or self.cache_min_lookups < 0:
            raise ValueError("min_requests / cache_min_lookups must be >= 0")
        if self.respawn_window_seconds <= 0:
            raise ValueError("respawn_window_seconds must be positive")


def rollup(component: str, children: list[HealthReport],
           own: HealthReport | None = None) -> HealthReport:
    """Combine child reports under one parent verdict.

    ``own`` carries the parent's self-probe results (status, reasons,
    details); child verdicts can only raise it, per the precedence in the
    module docstring.
    """
    report = own if own is not None else HealthReport(component=component)
    report.component = component
    report.children = list(children)
    if children:
        failing = sum(1 for child in children if child.status == "failing")
        degraded = sum(1 for child in children if child.status == "degraded")
        if failing == len(children):
            report.degrade("failing", f"all {failing} children failing")
        elif failing:
            report.degrade(
                "degraded",
                f"{failing} of {len(children)} children failing: "
                + ", ".join(child.component for child in children
                            if child.status == "failing"))
        if degraded and failing != len(children):
            report.degrade(
                "degraded",
                f"{degraded} of {len(children)} children degraded: "
                + ", ".join(child.component for child in children
                            if child.status == "degraded"))
    return report


# -- stats-dict probes ---------------------------------------------------------
def error_rate_health(report: HealthReport, counters: dict,
                      policy: HealthPolicy) -> None:
    """Judge the ``errors`` / ``requests`` counters into ``report``."""
    requests = counters.get("requests", 0)
    errors = counters.get("errors", 0)
    report.details["requests"] = requests
    report.details["errors"] = errors
    if requests < policy.min_requests:
        return
    rate = errors / requests
    report.details["error_rate"] = round(rate, 4)
    if rate >= policy.error_rate_failing:
        report.degrade("failing",
                       f"error rate {rate:.1%} >= {policy.error_rate_failing:.1%}")
    elif rate >= policy.error_rate_degraded:
        report.degrade("degraded",
                       f"error rate {rate:.1%} >= {policy.error_rate_degraded:.1%}")


def cache_health(stats: dict | None, policy: HealthPolicy | None = None,
                 component: str = "route_cache") -> HealthReport:
    """Judge a :meth:`repro.serving.cache.RouteCache.stats` dict."""
    policy = policy or HealthPolicy()
    report = HealthReport(component=component)
    if not stats:
        report.details["enabled"] = False
        return report
    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    lookups = hits + misses
    invalidations = stats.get("invalidations", 0)
    report.details.update(lookups=lookups,
                          hit_rate=stats.get("hit_rate", 0.0),
                          invalidations=invalidations,
                          catalog_version=stats.get("catalog_version", 0))
    if lookups < policy.cache_min_lookups:
        return report  # cold cache: unmeasured, not unhealthy
    hit_rate = hits / lookups
    if hit_rate < policy.cache_hit_rate_floor:
        report.degrade("degraded",
                       f"cache hit rate {hit_rate:.1%} below floor "
                       f"{policy.cache_hit_rate_floor:.1%}")
    churn = invalidations / lookups
    if churn > policy.cache_churn_ratio:
        report.degrade("degraded",
                       f"catalog version churn: {invalidations} invalidations "
                       f"over {lookups} lookups")
    return report


def queue_health(report: HealthReport, queue_depth: int, capacity: int,
                 policy: HealthPolicy) -> None:
    """Judge a batcher backlog (depth vs. ``max_batch_size``) into ``report``."""
    report.details["queue_depth"] = queue_depth
    report.details["batch_capacity"] = capacity
    if capacity <= 0:
        return
    ratio = queue_depth / capacity
    if ratio >= policy.queue_depth_failing_ratio:
        report.degrade("failing",
                       f"batcher backlog {queue_depth} >= "
                       f"{policy.queue_depth_failing_ratio:g}x batch capacity")
    elif ratio >= policy.queue_depth_degraded_ratio:
        report.degrade("degraded",
                       f"batcher backlog {queue_depth} >= "
                       f"{policy.queue_depth_degraded_ratio:g}x batch capacity")


def admission_health(report: HealthReport, stats: dict | None) -> None:
    """Judge an admission controller's stats into ``report``.

    Burn-triggered shedding is a *deliberate* degradation — the service is
    refusing work to keep admitted latency bounded — so it reads as
    ``degraded``, never ``failing`` (admitted traffic is still served).
    Plain token-bucket / queue rejections are the policy working as
    configured and only show up in the details.
    """
    if not stats:
        return
    report.details["admission_rejected"] = stats.get("rejected", 0)
    report.details["admission_shedding"] = bool(stats.get("shedding"))
    if stats.get("shedding"):
        report.degrade(
            "degraded",
            f"admission control shedding load (SLO burn {stats.get('burn')}, "
            f"{stats.get('rejected', 0)} rejected)")


def dispatcher_health(report: HealthReport, dispatcher: dict, requests: int,
                      policy: HealthPolicy) -> None:
    """Judge dispatcher timeout / escalation counters into ``report``."""
    timed_out = dispatcher.get("shards_timed_out", 0)
    failures = dispatcher.get("shard_failures", 0)
    escalations = dispatcher.get("escalations", 0)
    report.details.update(shards_timed_out=timed_out, shard_failures=failures,
                          escalations=escalations)
    if requests < policy.min_requests:
        return
    timeout_rate = timed_out / requests
    report.details["timeout_rate"] = round(timeout_rate, 4)
    if timeout_rate >= policy.timeout_rate_failing:
        report.degrade("failing",
                       f"shard timeout rate {timeout_rate:.1%} >= "
                       f"{policy.timeout_rate_failing:.1%}")
    elif timeout_rate >= policy.timeout_rate_degraded:
        report.degrade("degraded",
                       f"shard timeout rate {timeout_rate:.1%} >= "
                       f"{policy.timeout_rate_degraded:.1%}")
    escalation_rate = escalations / requests
    report.details["escalation_rate"] = round(escalation_rate, 4)
    if escalation_rate > policy.escalation_rate_ceiling:
        report.degrade("degraded",
                       f"escalation rate {escalation_rate:.1%} above ceiling "
                       f"{policy.escalation_rate_ceiling:.1%} (fast tier "
                       f"confidence has collapsed)")
