"""Zero-dependency metric exporters: Prometheus text format and JSON lines.

Any ``stats()`` / ``snapshot()`` dict from the serving stack flattens into a
list of ``(metric_name, labels, value)`` samples, which then renders either
as Prometheus text exposition format or as one JSON object per line.  Both
renderers are driven off the same flattened list and both parse back to it
exactly, so the two export paths provably carry the same numbers.

A small CLI dumps a snapshot from a JSON file (or stdin), or boots a
checkpointed :class:`repro.serving.RoutingService`, runs a few probe
requests, and exports its live stats::

    python -m repro.obs.export --input snapshot.json --format prometheus
    python -m repro.obs.export --checkpoint ckpt/ --probe "How many singers?" \
        --format jsonl
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Iterable

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

Sample = tuple[str, dict, float]

#: Leaf field names whose values only ever go up (lifetime counters across
#: the serving / cluster / transport layers).  Samples ending in one of
#: these — or living under a ``counters`` dict — are typed ``counter`` in
#: the Prometheus rendering; everything else stays a ``gauge``.
_MONOTONIC_LEAVES = frozenset({
    "hits", "misses", "evictions", "expirations", "invalidations",
    "completed", "errors", "failovers", "successes", "failures",
    "escalations", "shard_failures", "shards_timed_out", "partial_gathers",
    "requests_sent", "timeouts", "crashes", "respawns",
    "batches_dispatched", "requests_dispatched",
})


def _sanitize(part: str) -> str:
    """A snapshot key as a metric-name component (may come back empty)."""
    return _NAME_OK.sub("_", str(part)).strip("_")


def flatten_snapshot(snapshot: dict, prefix: str = "repro") -> list[Sample]:
    """Flatten a nested stats dict into ``(name, labels, value)`` samples.

    Numeric leaves become samples; nested dict keys extend the metric name
    unless they are not name-safe (empty after sanitizing, or digit-leading
    like the batch-size histogram's bucket keys), in which case the key
    becomes a label named after the enclosing field.  List items are
    labelled by index.  Strings and ``None`` are dropped -- exporters carry
    numbers, not configuration.

    A latency summary (a dict carrying both ``count`` and a ``buckets``
    sub-dict of cumulative counts keyed by upper bound, as
    :meth:`repro.serving.metrics.LatencyRecorder.summary` emits) additionally
    yields real Prometheus histogram series — ``{name}_seconds_bucket`` with
    ``le`` labels plus ``{name}_seconds_sum`` / ``{name}_seconds_count`` —
    so ``histogram_quantile()`` works on ingested data."""
    samples: list[Sample] = []

    def walk(name: str, leaf: str, labels: dict, value) -> None:
        if isinstance(value, bool):
            samples.append((name, labels, 1.0 if value else 0.0))
        elif isinstance(value, (int, float)):
            samples.append((name, labels, float(value)))
        elif isinstance(value, dict):
            buckets = value.get("buckets")
            histogram = isinstance(buckets, dict) and "count" in value
            if histogram:
                family = f"{name}_seconds"
                for bound, count in buckets.items():
                    samples.append((f"{family}_bucket",
                                    {**labels, "le": str(bound)}, float(count)))
                samples.append((f"{family}_sum", labels,
                                float(value.get("total_seconds", 0.0))))
                samples.append((f"{family}_count", labels,
                                float(value["count"])))
            for key, item in value.items():
                if histogram and key == "buckets":
                    continue  # already rendered as the _bucket series
                part = _sanitize(key)
                if part and not part[0].isdigit():
                    walk(f"{name}_{part}", part, labels, item)
                else:
                    walk(name, leaf, {**labels, leaf or "key": str(key)}, item)
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                walk(name, leaf,
                     {**labels, f"{leaf or 'item'}_index": str(index)}, item)
        # strings / None / other leaves carry no numeric value: skipped

    root = _sanitize(prefix) or "repro"
    for key, item in snapshot.items():
        part = _sanitize(key)
        if part and not part[0].isdigit():
            walk(f"{root}_{part}", part, {}, item)
        else:
            walk(root, "key", {"key": str(key)}, item)
    return samples


# -- Prometheus text format ----------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _histogram_families(samples: Iterable[Sample]) -> set[str]:
    """Family names that carry cumulative ``_bucket{le=...}`` series."""
    return {name[:-len("_bucket")] for name, labels, _ in samples
            if name.endswith("_bucket") and "le" in labels}


def _sample_type(name: str, families: set[str]) -> tuple[str, str]:
    """``(type_name, metric_type)`` of one sample.

    Histogram members (``_bucket`` / ``_sum`` / ``_count`` of a family that
    has bucket series) are typed once under the family name; monotonic
    counters are typed ``counter``; everything else is a ``gauge``."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[:-len(suffix)] in families:
            return name[:-len(suffix)], "histogram"
    if "_counters_" in name or any(name.endswith(f"_{leaf}")
                                   for leaf in _MONOTONIC_LEAVES):
        return name, "counter"
    return name, "gauge"


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot in Prometheus text exposition format.

    Values print via ``repr(float(...))`` so parsing the text back yields
    bit-identical floats (the round-trip contract with the JSON exporter).
    ``# TYPE`` lines are semantically honest: lifetime counters are typed
    ``counter``, latency-recorder bucket series are typed ``histogram``
    (one line per family, covering its ``_bucket``/``_sum``/``_count``),
    and everything else stays ``gauge``."""
    samples = flatten_snapshot(snapshot, prefix=prefix)
    families = _histogram_families(samples)
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, value in samples:
        type_name, metric_type = _sample_type(name, families)
        if type_name not in typed:
            typed.add(type_name)
            lines.append(f"# TYPE {type_name} {metric_type}")
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(labels[key]))}"'
                for key in sorted(labels))
            lines.append(f"{name}{{{rendered}}} {float(value)!r}")
        else:
            lines.append(f"{name} {float(value)!r}")
    return "\n".join(lines) + "\n"


_SERIES = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                     r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> list[Sample]:
    """Parse text exposition format back into samples (inverse of render)."""
    samples: list[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SERIES.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = {key: _unescape_label(raw)
                  for key, raw in _LABEL.findall(match.group("labels") or "")}
        samples.append((match.group("name"), labels, float(match.group("value"))))
    return samples


# -- JSON lines ----------------------------------------------------------------
def to_json_lines(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot as one ``{"name", "labels", "value"}`` per line."""
    lines = [
        json.dumps({"name": name, "labels": labels, "value": float(value)},
                   sort_keys=True)
        for name, labels, value in flatten_snapshot(snapshot, prefix=prefix)
    ]
    return "\n".join(lines) + "\n"


def parse_json_lines(text: str) -> list[Sample]:
    samples: list[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        samples.append((record["name"],
                        {str(k): str(v) for k, v in record["labels"].items()},
                        float(record["value"])))
    return samples


# -- CLI -----------------------------------------------------------------------
def _load_snapshot(args: argparse.Namespace) -> dict:
    if args.checkpoint is not None:
        from repro.serving import RoutingService

        service = RoutingService.from_checkpoint(args.checkpoint)
        try:
            for question in args.probe:
                service.submit(question)
            return service.stats()
        finally:
            service.close()
    if args.input == "-":
        return json.load(sys.stdin)
    with open(args.input, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Export a serving-stack stats snapshot as Prometheus "
                    "text format or JSON lines.")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", metavar="PATH",
                        help="snapshot JSON file to export ('-' for stdin)")
    source.add_argument("--checkpoint", metavar="DIR",
                        help="boot a RoutingService from this checkpoint and "
                             "export its live stats")
    parser.add_argument("--probe", action="append", default=[], metavar="QUESTION",
                        help="question to submit before snapshotting "
                             "(repeatable; only with --checkpoint)")
    parser.add_argument("--format", choices=("prometheus", "jsonl"),
                        default="prometheus")
    parser.add_argument("--prefix", default="repro",
                        help="metric-name prefix (default: repro)")
    args = parser.parse_args(argv)
    if args.probe and args.checkpoint is None:
        parser.error("--probe requires --checkpoint")

    snapshot = _load_snapshot(args)
    render = to_prometheus if args.format == "prometheus" else to_json_lines
    sys.stdout.write(render(snapshot, prefix=args.prefix))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
