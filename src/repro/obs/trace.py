"""Request-scoped tracing for the routing stack.

One :class:`TraceContext` per request (or per scatter wave) collects a tree
of :class:`Span` records: the root ``request`` span plus one child span per
stage the request passes through -- ``queue_wait``, ``encode``, ``decode``,
``parse``, per-shard ``scatter`` and ``wire`` spans, ``merge``, and
``escalation``.  Everything is in-process and lock-guarded; span payloads are
plain JSON-safe dicts so they can cross the cluster wire protocol verbatim.

Design points:

* **Injectable clock.**  :class:`Tracer` takes a ``clock`` callable (default
  ``time.monotonic``), so tests drive time explicitly.
* **Zero-cost when off.**  A disabled tracer's ``start_trace`` returns
  ``None`` and every instrumentation site guards on that, so the traced hot
  path pays one ``is None`` check per stage.
* **Stage metrics.**  When the tracer is built over a
  :class:`repro.serving.metrics.MetricsRegistry`, every locally-recorded span
  feeds ``observe_stage(name, duration)`` on close -- the stage-breakdown
  percentiles survive after the journal drops the trace itself.
* **Leak-proof finish.**  ``TraceContext.finish()`` force-closes any child
  span still open (an abandoned timeout thread, a crashed worker's scatter
  arm) with ``status="error"`` before the trace completes, so the journal
  never accumulates open traces.  A leaked thread that ends its span *after*
  the finish hits an idempotent no-op.
* **Remote stitching.**  Subprocess workers adopt the parent's trace id
  (:meth:`Tracer.adopt`), record their own spans, and return them in the
  ``route_response`` frame; :meth:`TraceContext.add_remote_spans` rebases
  their timestamps (the child runs on a different monotonic epoch) onto the
  parent's ``wire`` span and splices them into the tree.
* **Bounded journal.**  :class:`TraceJournal` tracks open traces and retains
  only the N slowest completed traces as exemplars -- the operator's "what do
  my worst requests look like" view, at O(N) memory forever.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence

#: Seeded from ``os.urandom`` at import, so every process (dispatcher and
#: subprocess workers alike) draws from an independent stream.  A shared PRNG
#: beats ``uuid.uuid4()`` here: ids are minted on the request hot path, and
#: uuid4 pays an ``os.urandom`` syscall per call for cryptographic strength
#: that trace ids do not need.
_ids = random.Random()


def _new_id() -> str:
    return f"{_ids.getrandbits(64):016x}"


class Span:
    """One timed operation inside a trace.

    ``started``/``ended`` are clock readings from the owning tracer's clock
    (monotonic seconds by default); ``ended is None`` marks an open span.
    ``remote=True`` marks a span stitched in from another process -- its
    timestamps have been rebased and it never feeds local stage metrics.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "started", "ended",
                 "status", "error", "attributes", "remote", "_context")

    def __init__(self, context: "TraceContext | None", trace_id: str, span_id: str,
                 parent_id: str | None, name: str, started: float,
                 attributes: dict) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started = started
        self.ended: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.attributes = attributes
        self.remote = False
        self._context = context

    @property
    def duration_seconds(self) -> float | None:
        return None if self.ended is None else self.ended - self.started

    def annotate(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def end(self, status: str = "ok", error: str | None = None) -> None:
        """Close the span (idempotent: only the first call takes effect)."""
        context = self._context
        if context is not None:
            context._close_span(self, status, error)

    def to_dict(self) -> dict:
        """A JSON-safe payload (the shape workers ship over the wire)."""
        duration = self.duration_seconds
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started": self.started,
            "ended": self.ended,
            "duration_ms": round(duration * 1000.0, 3) if duration is not None else None,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "remote": self.remote,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.ended is None else f"{self.status}"
        return f"Span({self.name!r}, {state}, trace={self.trace_id})"


class TraceContext:
    """The spans of one request; hand out via :meth:`Tracer.start_trace`.

    Thread-safe: scatter arms and batcher workers open and close spans
    concurrently.  The context is *finished* exactly once (by whoever created
    it); spans started by threads that outlive the finish become detached
    no-ops instead of corrupting the completed record.
    """

    def __init__(self, tracer: "Tracer", trace_id: str, name: str,
                 parent_span_id: str | None = None,
                 attributes: dict | None = None) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._open_count = 0
        self._finished = False
        self.root = self._new_span(name, parent_span_id, attributes or {})

    # -- span lifecycle ------------------------------------------------------
    def _new_span(self, name: str, parent_id: str | None, attributes: dict) -> Span:
        span = Span(self, self.trace_id, _new_id(), parent_id, name,
                    self._tracer._clock(), attributes)
        with self._lock:
            if self._finished:
                # A thread that outlived the finish: the span is detached
                # (never recorded, ``end()`` a no-op) instead of corrupting
                # the completed record.
                span._context = None
            else:
                self._spans.append(span)
                self._open_count += 1
        return span

    def _close_span(self, span: Span, status: str, error: str | None) -> None:
        with self._lock:
            if span.ended is not None:
                return
            span.ended = self._tracer._clock()
            span.status = status
            if error is not None:
                span.error = error
            self._open_count -= 1
        self._tracer._span_closed(span)

    def start_span(self, name: str, parent: Span | None = None,
                   **attributes: object) -> Span:
        """Open a child span (parented to the root unless given a parent)."""
        parent_id = parent.span_id if parent is not None else self.root.span_id
        return self._new_span(name, parent_id, dict(attributes))

    @contextmanager
    def span(self, name: str, parent: Span | None = None,
             **attributes: object) -> Iterator[Span]:
        span = self.start_span(name, parent=parent, **attributes)
        try:
            yield span
        except BaseException as exc:
            span.end(status="error", error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            span.end()

    def annotate(self, **attributes: object) -> None:
        self.root.annotate(**attributes)

    def scoped(self, span: Span) -> "ScopedTrace":
        """A view of this context whose default parent is ``span``."""
        return ScopedTrace(self, span)

    # -- wire propagation ----------------------------------------------------
    def wire_context(self, parent: Span | None = None) -> dict:
        """The JSON-safe propagation payload a remote peer adopts from."""
        anchor = parent if parent is not None else self.root
        return {"trace_id": self.trace_id, "parent_span_id": anchor.span_id}

    def add_remote_spans(self, payloads: Sequence[dict], anchor: Span) -> list[Span]:
        """Splice spans recorded by a remote peer under the ``anchor`` span.

        The peer's clock shares no epoch with ours, so its window is rebased
        to be centered inside the anchor (wire) span -- request serialization
        and reply parsing straddle it symmetrically, which is as close as two
        unsynchronized monotonic clocks get.  Parentless remote spans hang
        off the anchor; remote spans never feed local stage metrics (the
        remote side already recorded them against its own registry).
        """
        records = [payload for payload in payloads if isinstance(payload, dict)]
        if not records:
            return []
        starts = [float(record.get("started") or 0.0) for record in records]
        ends = [float(record.get("ended") or record.get("started") or 0.0)
                for record in records]
        anchor_end = anchor.ended if anchor.ended is not None else self._tracer._clock()
        offset = ((anchor.started + anchor_end) / 2.0
                  - (min(starts) + max(ends)) / 2.0)
        added: list[Span] = []
        for record in records:
            started = float(record.get("started") or 0.0) + offset
            span = Span(None, self.trace_id,
                        str(record.get("span_id") or _new_id()),
                        str(record["parent_id"]) if record.get("parent_id")
                        else anchor.span_id,
                        str(record.get("name") or "remote"), started,
                        dict(record.get("attributes") or {}))
            ended = record.get("ended")
            span.ended = float(ended) + offset if ended is not None else started
            span.status = str(record.get("status") or "ok")
            error = record.get("error")
            span.error = str(error) if error is not None else None
            span.remote = True
            added.append(span)
        with self._lock:
            if not self._finished:
                self._spans.extend(added)
        return added

    # -- completion ----------------------------------------------------------
    def finish(self, status: str = "ok", error: str | None = None) -> None:
        """Close the root span and complete the trace (idempotent).

        Any child span still open -- a timed-out scatter arm, an abandoned
        worker thread -- is force-closed with an error status first: traces
        complete with a full accounting instead of leaking open spans.
        """
        with self._lock:
            if self._finished:
                return
            self._finished = True
            spans = list(self._spans)
        for span in spans:
            if span is not self.root and span.ended is None:
                span.end(status="error", error=error or "abandoned")
        self.root.end(status=status, error=error)
        self._tracer._complete(self)

    # -- introspection -------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished

    def open_span_count(self) -> int:
        with self._lock:
            return self._open_count

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def span_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.spans()]

    def find_spans(self, name: str) -> list[Span]:
        return [span for span in self.spans() if span.name == name]

    def duration_seconds(self) -> float | None:
        return self.root.duration_seconds


class ScopedTrace:
    """A :class:`TraceContext` view rooted at one of its spans.

    Layers hand a scope down the call chain (dispatcher -> replica -> shard
    service) so spans opened deeper nest under the caller's span instead of
    the trace root.  Duck-compatible with :class:`TraceContext` for every
    downstream instrumentation site.
    """

    __slots__ = ("context", "parent")

    def __init__(self, context: TraceContext, parent: Span) -> None:
        self.context = context
        self.parent = parent

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    def start_span(self, name: str, parent: Span | None = None,
                   **attributes: object) -> Span:
        return self.context.start_span(
            name, parent=parent if parent is not None else self.parent, **attributes)

    @contextmanager
    def span(self, name: str, parent: Span | None = None,
             **attributes: object) -> Iterator[Span]:
        with self.context.span(
                name, parent=parent if parent is not None else self.parent,
                **attributes) as span:
            yield span

    def annotate(self, **attributes: object) -> None:
        self.parent.annotate(**attributes)

    def scoped(self, span: Span) -> "ScopedTrace":
        return ScopedTrace(self.context, span)

    def wire_context(self, parent: Span | None = None) -> dict:
        return self.context.wire_context(
            parent if parent is not None else self.parent)

    def add_remote_spans(self, payloads: Sequence[dict], anchor: Span) -> list[Span]:
        return self.context.add_remote_spans(payloads, anchor)


class TraceJournal:
    """Bounded trace accounting: open traces + the N slowest exemplars.

    Completed traces are counted and then forgotten, except for the
    ``max_slow_traces`` slowest, whose full span trees are retained (a
    min-heap keyed by duration keeps insertion O(log N)).  ``stats()`` is
    JSON-round-trip-safe and cheap, so it rides along in every service
    snapshot; :meth:`slowest` returns the full exemplar records for
    debugging and tests.
    """

    def __init__(self, max_slow_traces: int = 8) -> None:
        if max_slow_traces < 0:
            raise ValueError("max_slow_traces must be non-negative")
        self.max_slow_traces = max_slow_traces
        self._lock = threading.Lock()
        self._open: dict[int, TraceContext] = {}
        self._slowest: list[tuple[float, int, dict]] = []
        self._sequence = itertools.count()
        self.completed = 0
        self.errors = 0

    # -- tracer hooks --------------------------------------------------------
    def _opened(self, context: TraceContext) -> None:
        with self._lock:
            self._open[id(context)] = context

    def _completed(self, context: TraceContext) -> None:
        duration = context.duration_seconds() or 0.0
        with self._lock:
            self._open.pop(id(context), None)
            self.completed += 1
            if context.root.status != "ok":
                self.errors += 1
            # Decide retention *before* building the record: serializing the
            # span tree is the expensive part, and most traces are not among
            # the N slowest -- they must cost nothing beyond the counters.
            retain = self.max_slow_traces > 0 and (
                len(self._slowest) < self.max_slow_traces
                or duration > self._slowest[0][0])
        if not retain:
            return
        record = {
            "trace_id": context.trace_id,
            "name": context.root.name,
            "status": context.root.status,
            "duration_ms": round(duration * 1000.0, 3),
            "num_spans": len(context.spans()),
            "spans": context.span_dicts(),
        }
        with self._lock:
            item = (duration, next(self._sequence), record)
            if len(self._slowest) < self.max_slow_traces:
                heapq.heappush(self._slowest, item)
            elif item[0] > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, item)

    # -- reading -------------------------------------------------------------
    def open_trace_count(self) -> int:
        with self._lock:
            return len(self._open)

    def open_span_count(self) -> int:
        with self._lock:
            contexts = list(self._open.values())
        return sum(context.open_span_count() for context in contexts)

    def slowest(self) -> list[dict]:
        """Retained exemplars, slowest first, with their full span trees."""
        with self._lock:
            items = sorted(self._slowest, reverse=True)
        return [record for _, _, record in items]

    def find(self, trace_id: str) -> dict | None:
        for record in self.slowest():
            if record["trace_id"] == trace_id:
                return record
        return None

    def stats(self) -> dict:
        """A JSON-safe summary (exemplars are listed without their spans)."""
        with self._lock:
            contexts = list(self._open.values())
            items = sorted(self._slowest, reverse=True)
            completed = self.completed
            errors = self.errors
        return {
            "open_traces": len(contexts),
            "open_spans": sum(context.open_span_count() for context in contexts),
            "completed": completed,
            "errors": errors,
            "retained": len(items),
            "slowest": [
                {key: record[key] for key in
                 ("trace_id", "name", "status", "duration_ms", "num_spans")}
                for _, _, record in items
            ],
        }


class Tracer:
    """Creates traces, feeds stage metrics, and owns the journal.

    ``metrics`` is an optional :class:`repro.serving.metrics.MetricsRegistry`;
    when present, every locally-recorded span feeds
    ``observe_stage(span.name, duration)`` as it closes.  ``enabled=False``
    turns :meth:`start_trace` into a ``None``-returning no-op (the untraced
    hot path); :meth:`adopt` ignores the flag, because a wire frame carrying
    a trace id *is* the instruction to trace.
    """

    def __init__(self, metrics=None, enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic,
                 max_slow_traces: int = 8) -> None:
        self.metrics = metrics
        self.enabled = enabled
        self._clock = clock
        self.journal = TraceJournal(max_slow_traces=max_slow_traces)

    def start_trace(self, name: str = "request",
                    **attributes: object) -> TraceContext | None:
        if not self.enabled:
            return None
        context = TraceContext(self, _new_id(), name, attributes=dict(attributes))
        self.journal._opened(context)
        return context

    def adopt(self, trace_id: str, parent_span_id: str | None,
              name: str = "worker", **attributes: object) -> TraceContext:
        """Join a trace started elsewhere (the worker child side)."""
        context = TraceContext(self, str(trace_id), name,
                               parent_span_id=parent_span_id,
                               attributes=dict(attributes))
        self.journal._opened(context)
        return context

    # -- context hooks -------------------------------------------------------
    def _span_closed(self, span: Span) -> None:
        if self.metrics is not None and not span.remote and span.ended is not None:
            self.metrics.observe_stage(span.name, span.ended - span.started)

    def _complete(self, context: TraceContext) -> None:
        self.journal._completed(context)


# -- instrumentation helpers ---------------------------------------------------
def distinct_traces(traces: Iterable | None) -> list:
    """The distinct non-``None`` contexts of a per-question trace list.

    A batched ``route_batch`` call may serve several requests that coalesced
    in the micro-batcher -- each stage should open one span per *request*,
    not per question, so repeated contexts collapse (by identity)."""
    if not traces:
        return []
    seen: set[int] = set()
    distinct = []
    for trace in traces:
        if trace is None or id(trace) in seen:
            continue
        seen.add(id(trace))
        distinct.append(trace)
    return distinct


@contextmanager
def stage_spans(contexts: Sequence, name: str,
                **attributes: object) -> Iterator[list[Span]]:
    """Open one ``name`` span on every context; close them all on exit.

    Yields the span list so the body can annotate them (e.g. decode-engine
    counters); an exception closes every span with an error status."""
    spans = [context.start_span(name, **attributes) for context in contexts]
    try:
        yield spans
    except BaseException as exc:
        for span in spans:
            span.end(status="error", error=f"{type(exc).__name__}: {exc}")
        raise
    else:
        for span in spans:
            span.end()


@contextmanager
def maybe_span(trace, name: str, **attributes: object) -> Iterator[Span | None]:
    """``trace.span(...)`` when tracing, a no-op otherwise."""
    if trace is None:
        yield None
        return
    with trace.span(name, **attributes) as span:
        yield span
