"""Prompt construction for LLM-based SQL generation (paper §3.6).

Three strategies are reproduced:

* **Best schema prompting** (Figure 5): the single highest-probability schema
  is rendered as ``table(columns)`` lines above the question.
* **Multiple schema prompting**: the table blocks of several candidate
  schemata are concatenated in one prompt.
* **Multiple schema chain-of-thought prompting** (Figure 6): a first turn asks
  the model to select the most relevant candidate schema, a second turn fills
  the basic prompt with the selected schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.schema.database import Database


class PromptStrategy(str, Enum):
    """The candidate-schema incorporation strategies compared in Table 6."""

    BEST_SCHEMA = "best_schema"
    MULTIPLE_SCHEMA = "multiple_schema"
    MULTIPLE_SCHEMA_COT = "multiple_schema_cot"
    HUMAN_IN_THE_LOOP = "human_in_the_loop"


@dataclass(frozen=True)
class SchemaPrompt:
    """A rendered prompt plus the structured schema it was built from."""

    text: str
    database: str
    tables: tuple[str, ...]


def render_schema_block(database: Database, tables: Sequence[str],
                        columns_filter: dict[str, Sequence[str]] | None = None) -> str:
    """Render ``table(col, col, ...)`` lines for the prompted tables.

    ``columns_filter`` optionally restricts the columns listed for a table
    (used by the gold-columns oracle test).
    """
    lines = []
    for table_name in tables:
        if not database.has_table(table_name):
            continue
        table = database.table(table_name)
        if columns_filter and table_name in columns_filter:
            wanted = set(columns_filter[table_name])
            column_names = [column.name for column in table.columns if column.name in wanted]
            if not column_names:
                column_names = table.column_names
        else:
            column_names = table.column_names
        lines.append(f"# {table_name}({', '.join(column_names)})")
    return "\n".join(lines)


_BASIC_TEMPLATE = (
    "### Complete sqlite SQL query only and with no explanation\n"
    "### Sqlite SQL tables, with their properties:\n"
    "#\n"
    "{schema_block}\n"
    "#\n"
    "### {question}\n"
    "SELECT"
)


def build_best_schema_prompt(database: Database, tables: Sequence[str], question: str,
                             columns_filter: dict[str, Sequence[str]] | None = None) -> SchemaPrompt:
    """The basic prompt of Figure 5 filled with one candidate schema."""
    schema_block = render_schema_block(database, tables, columns_filter)
    text = _BASIC_TEMPLATE.format(schema_block=schema_block, question=question)
    return SchemaPrompt(text=text, database=database.name, tables=tuple(tables))


def build_multiple_schema_prompt(candidates: Sequence[tuple[Database, Sequence[str]]],
                                 question: str) -> SchemaPrompt:
    """One prompt concatenating the table blocks of several candidate schemata."""
    blocks = []
    all_tables: list[str] = []
    for database, tables in candidates:
        blocks.append(render_schema_block(database, tables))
        all_tables.extend(f"{database.name}.{table}" for table in tables)
    text = _BASIC_TEMPLATE.format(schema_block="\n".join(blocks), question=question)
    primary = candidates[0][0].name if candidates else ""
    return SchemaPrompt(text=text, database=primary, tables=tuple(all_tables))


_COT_TEMPLATE = (
    "Based on the provided natural language question, find the database that can best answer\n"
    "this question from the list of schemata below. Only output the corresponding database\n"
    "schema identifier in the [id] format, without any additional information.\n"
    "Question: {question}\n"
    "Sqlite SQL databases, with their tables and properties:\n"
    "{candidate_blocks}\n"
)


def build_cot_selection_prompt(candidates: Sequence[tuple[Database, Sequence[str]]],
                               question: str) -> str:
    """Turn 1 of the chain-of-thought strategy (Figure 6): pick a schema id."""
    blocks = []
    for index, (database, tables) in enumerate(candidates, start=1):
        block = render_schema_block(database, tables)
        indented = "\n".join("  " + line.lstrip("# ") for line in block.splitlines())
        blocks.append(f"[{index}] {database.name}\n{indented}")
    return _COT_TEMPLATE.format(question=question, candidate_blocks="\n".join(blocks))
