"""Oracle schema providers for the upper-bound tests of Table 6.

The oracle test feeds the LLM progressively smaller gold schemata: five
database schemata including the gold one, the gold database, the gold tables,
and finally the gold tables restricted to the gold columns.  Each level is a
"schema provider" returning the candidate schema(ta) to prompt with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.examples import Example
from repro.schema.catalog import Catalog
from repro.utils.rng import SeededRng


@dataclass
class OracleSchemaProvider:
    """Builds the four oracle prompting configurations for an example."""

    catalog: Catalog
    seed: int = 0

    def gold_tables_and_columns(self, example: Example) -> tuple[str, list[str], dict[str, list[str]]]:
        """Gold tables restricted to the gold columns ("Gold T. & C.")."""
        columns_filter: dict[str, list[str]] = {}
        for qualified in example.columns:
            table, _, column = qualified.partition(".")
            columns_filter.setdefault(table, []).append(column)
        # Primary/foreign keys are always kept so joins remain expressible.
        database = self.catalog.database(example.database)
        for table_name in example.tables:
            if not database.has_table(table_name):
                continue
            keys = [column.name for column in database.table(table_name).columns
                    if column.is_primary_key or column.name.endswith("_id")]
            columns_filter.setdefault(table_name, [])
            columns_filter[table_name].extend(keys)
        return example.database, list(example.tables), columns_filter

    def gold_tables(self, example: Example) -> tuple[str, list[str]]:
        """Gold tables with all their columns ("Gold T.")."""
        return example.database, list(example.tables)

    def gold_database(self, example: Example) -> tuple[str, list[str]]:
        """The whole gold database schema ("Gold DB")."""
        database = self.catalog.database(example.database)
        return example.database, database.table_names

    def five_databases(self, example: Example) -> list[tuple[str, list[str]]]:
        """Five full database schemata, the gold one included ("5 DB w. Gold")."""
        rng = SeededRng(self.seed).child(example.question)
        others = [name for name in self.catalog.database_names if name != example.database]
        distractors = rng.sample(others, min(4, len(others)))
        names = [example.database] + distractors
        rng.shuffle(names)
        return [(name, self.catalog.database(name).table_names) for name in names]
