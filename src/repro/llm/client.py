"""Simulated LLM client.

The client exposes the two operations the SQL-generation stage needs from an
LLM -- completing a schema-aware NL2SQL prompt, and selecting the most relevant
candidate schema in the chain-of-thought strategy -- together with the token
cost of every call.  Generation quality is driven by the heuristic generator
in :mod:`repro.llm.sqlgen`; the *interface* (prompt in, text + cost out)
matches what an OpenAI-backed client would provide, so swapping in a real LLM
only requires re-implementing this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.cost import CostModel, count_tokens
from repro.llm.prompts import (
    SchemaPrompt,
    build_best_schema_prompt,
    build_cot_selection_prompt,
    build_multiple_schema_prompt,
)
from repro.llm.sqlgen import HeuristicSqlGenerator
from repro.schema.catalog import Catalog
from repro.schema.database import Database
from repro.utils.text import singularize, tokenize_text


@dataclass
class LlmResponse:
    """One simulated LLM call: the completion text plus its cost."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    cost: float


@dataclass
class SimulatedLLM:
    """Deterministic stand-in for ``gpt-3.5-turbo`` SQL generation."""

    catalog: Catalog
    cost_model: CostModel = field(default_factory=CostModel)
    generator: HeuristicSqlGenerator = field(default_factory=HeuristicSqlGenerator)
    #: Accumulated cost of every call made through this client.
    total_cost: float = 0.0
    calls: int = 0

    # -- internals --------------------------------------------------------------
    def _record(self, prompt: str, completion: str) -> LlmResponse:
        prompt_tokens = count_tokens(prompt)
        completion_tokens = count_tokens(completion)
        cost = self.cost_model.cost(prompt_tokens, completion_tokens)
        self.total_cost += cost
        self.calls += 1
        return LlmResponse(text=completion, prompt_tokens=prompt_tokens,
                           completion_tokens=completion_tokens, cost=cost)

    # -- SQL generation ------------------------------------------------------------
    def generate_sql(self, question: str, database: Database, tables: list[str],
                     columns_filter: dict[str, list[str]] | None = None) -> tuple[str, LlmResponse]:
        """Generate SQL with the best-schema (basic) prompt."""
        prompt = build_best_schema_prompt(database, tables, question, columns_filter)
        sql = self.generator.generate(question, database, list(tables),
                                      columns_filter=columns_filter)
        response = self._record(prompt.text, sql)
        return sql, response

    def generate_sql_multi(self, question: str,
                           candidates: list[tuple[Database, list[str]]]) -> tuple[str, LlmResponse]:
        """Generate SQL with multiple candidate schemata concatenated in the prompt.

        Extraneous schemata are merged into the set of referencable tables of
        the *first* candidate's database -- mirroring how irrelevant context
        makes an LLM more likely to pick the wrong tables.
        """
        prompt = build_multiple_schema_prompt(candidates, question)
        primary_database, _ = candidates[0]
        table_pool: list[str] = []
        for database, tables in candidates:
            if database.name == primary_database.name:
                table_pool.extend(tables)
        # The generator selects among every prompted table of the primary
        # database; tables from other databases cannot produce executable SQL
        # against it, so they only add prompt cost and selection noise.
        best_database, best_tables = self._confusable_choice(question, candidates)
        sql = self.generator.generate(question, best_database, best_tables)
        response = self._record(prompt.text, sql)
        return sql, response

    def _confusable_choice(self, question: str,
                           candidates: list[tuple[Database, list[str]]]) -> tuple[Database, list[str]]:
        """Pick the candidate the model would implicitly write SQL against.

        With a single concatenated prompt the model is not forced to pick the
        top-ranked schema; it drifts towards whichever block lexically matches
        the question best, which is where multi-schema prompting loses accuracy.
        """
        best = candidates[0]
        best_score = -1.0
        for database, tables in candidates:
            score = self._schema_overlap(question, database, tables)
            if score > best_score:
                best_score = score
                best = (database, tables)
        return best

    # -- chain-of-thought schema selection ----------------------------------------------
    def select_schema(self, question: str,
                      candidates: list[tuple[Database, list[str]]]) -> tuple[int, LlmResponse]:
        """Turn 1 of the CoT strategy: return the index of the chosen candidate."""
        prompt = build_cot_selection_prompt(candidates, question)
        scores = [self._schema_overlap(question, database, tables)
                  for database, tables in candidates]
        chosen = max(range(len(candidates)), key=lambda index: scores[index]) if candidates else 0
        response = self._record(prompt, f"[{chosen + 1}]")
        return chosen, response

    def _schema_overlap(self, question: str, database: Database, tables: list[str]) -> float:
        concepts = {singularize(token) for token in tokenize_text(question)}
        score = 0.0
        for table_name in tables:
            if not database.has_table(table_name):
                continue
            table = database.table(table_name)
            words = {singularize(word) for word in table.words}
            column_words = {singularize(word) for column in table.columns for word in column.words}
            score += 2.0 * len(concepts & words) + 0.5 * len(concepts & column_words)
        return score

    # -- bookkeeping -----------------------------------------------------------------------
    def reset_usage(self) -> None:
        self.total_cost = 0.0
        self.calls = 0


__all__ = ["LlmResponse", "SimulatedLLM", "SchemaPrompt"]
