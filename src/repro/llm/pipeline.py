"""Schema-agnostic NL2SQL pipeline and execution-accuracy evaluation.

The pipeline couples any routing method (DBCopilot or a retrieval baseline)
with the simulated LLM and one of the prompt strategies of §3.6, executes the
generated SQL on the in-memory engine, and scores execution accuracy (EX)
against the gold query, reporting the accumulated LLM cost -- the protocol of
the paper's Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.datasets.examples import Example
from repro.engine.comparison import results_equivalent
from repro.engine.instance import CatalogInstance
from repro.engine.relation import Relation
from repro.llm.client import SimulatedLLM
from repro.llm.prompts import PromptStrategy
from repro.retrieval.base import RoutingPrediction
from repro.schema.catalog import Catalog
from repro.sql.errors import SqlError
from repro.sql.executor import SqlExecutor
from repro.sql.parser import parse_sql

#: A routing function maps a question to a RoutingPrediction.
Router = Callable[[str], RoutingPrediction]


@dataclass
class GenerationResult:
    """One end-to-end NL2SQL attempt."""

    question: str
    predicted_sql: str
    predicted_database: str
    gold_database: str
    correct: bool
    cost: float
    error: str = ""


@dataclass
class Nl2SqlEvaluation:
    """Aggregate EX and cost over a test set."""

    results: list[GenerationResult] = field(default_factory=list)
    total_cost: float = 0.0

    @property
    def execution_accuracy(self) -> float:
        if not self.results:
            return 0.0
        return sum(1.0 for result in self.results if result.correct) / len(self.results)

    def as_row(self) -> dict[str, float]:
        return {
            "EX": round(100.0 * self.execution_accuracy, 2),
            "cost": round(self.total_cost, 4),
        }


class SchemaAgnosticNL2SQL:
    """Route a question, prompt the LLM, execute, and compare."""

    def __init__(self, catalog: Catalog, instances: CatalogInstance, llm: SimulatedLLM,
                 router: Router | None = None,
                 strategy: PromptStrategy = PromptStrategy.BEST_SCHEMA,
                 num_candidates: int = 5) -> None:
        self.catalog = catalog
        self.instances = instances
        self.llm = llm
        self.router = router
        self.strategy = strategy
        self.num_candidates = num_candidates

    # -- execution helpers ---------------------------------------------------------
    def _execute(self, database: str, sql: str) -> Relation | None:
        try:
            instance = self.instances.instance(database)
            return SqlExecutor(instance).execute_sql(sql)
        except (SqlError, KeyError):
            return None

    def _gold_result(self, example: Example) -> Relation | None:
        return self._execute(example.database, example.sql)

    @staticmethod
    def _is_ordered(sql: str) -> bool:
        try:
            return parse_sql(sql).is_ordered()
        except SqlError:
            return False

    # -- candidate selection ------------------------------------------------------------
    def _candidates(self, prediction: RoutingPrediction) -> list[tuple[str, list[str]]]:
        candidates = []
        for candidate in prediction.candidate_schemas[: self.num_candidates]:
            if not self.catalog.has_database(candidate.database):
                continue
            database = self.catalog.database(candidate.database)
            tables = [table for table in candidate.tables if database.has_table(table)]
            if not tables:
                tables = database.table_names
            candidates.append((candidate.database, tables))
        return candidates

    # -- main entry point ------------------------------------------------------------------
    def answer(self, example: Example, prediction: RoutingPrediction | None = None,
               gold_schema_selector: bool = False) -> GenerationResult:
        """Answer one example; returns the generation result with EX judgement."""
        if prediction is None:
            if self.router is None:
                raise ValueError("either a router or a prediction must be provided")
            prediction = self.router(example.question)
        candidates = self._candidates(prediction)
        if not candidates:
            return GenerationResult(question=example.question, predicted_sql="",
                                    predicted_database="", gold_database=example.database,
                                    correct=False, cost=0.0, error="no candidate schema")

        cost_before = self.llm.total_cost
        if gold_schema_selector or self.strategy is PromptStrategy.HUMAN_IN_THE_LOOP:
            chosen = self._human_in_the_loop_choice(example, candidates)
            database = self.catalog.database(chosen[0])
            sql, _ = self.llm.generate_sql(example.question, database, chosen[1])
            predicted_database = chosen[0]
        elif self.strategy is PromptStrategy.BEST_SCHEMA:
            database_name, tables = candidates[0]
            database = self.catalog.database(database_name)
            sql, _ = self.llm.generate_sql(example.question, database, tables)
            predicted_database = database_name
        elif self.strategy is PromptStrategy.MULTIPLE_SCHEMA:
            structured = [(self.catalog.database(name), tables) for name, tables in candidates]
            sql, _ = self.llm.generate_sql_multi(example.question, structured)
            predicted_database = self._database_of_sql(structured, sql)
        elif self.strategy is PromptStrategy.MULTIPLE_SCHEMA_COT:
            structured = [(self.catalog.database(name), tables) for name, tables in candidates]
            chosen_index, _ = self.llm.select_schema(example.question, structured)
            database, tables = structured[chosen_index]
            sql, _ = self.llm.generate_sql(example.question, database, list(tables))
            predicted_database = database.name
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown prompt strategy {self.strategy}")
        cost = self.llm.total_cost - cost_before

        predicted = self._execute(predicted_database, sql)
        gold = self._gold_result(example)
        correct = results_equivalent(predicted, gold,
                                     order_sensitive=self._is_ordered(example.sql)) \
            and predicted_database == example.database
        error = "" if predicted is not None else "execution failed"
        return GenerationResult(question=example.question, predicted_sql=sql,
                                predicted_database=predicted_database,
                                gold_database=example.database, correct=correct,
                                cost=cost, error=error)

    # -- oracle entry points (Table 6 upper-bound rows) -------------------------------
    def answer_with_schema(self, example: Example, database_name: str, tables: list[str],
                           columns_filter: dict[str, list[str]] | None = None) -> GenerationResult:
        """Answer with an explicitly provided schema (gold T&C / gold T / gold DB)."""
        database = self.catalog.database(database_name)
        cost_before = self.llm.total_cost
        sql, _ = self.llm.generate_sql(example.question, database, tables, columns_filter)
        cost = self.llm.total_cost - cost_before
        predicted = self._execute(database_name, sql)
        gold = self._gold_result(example)
        correct = results_equivalent(predicted, gold,
                                     order_sensitive=self._is_ordered(example.sql)) \
            and database_name == example.database
        return GenerationResult(question=example.question, predicted_sql=sql,
                                predicted_database=database_name,
                                gold_database=example.database, correct=correct, cost=cost,
                                error="" if predicted is not None else "execution failed")

    def answer_with_candidates(self, example: Example,
                               candidates: list[tuple[str, list[str]]]) -> GenerationResult:
        """Answer with several full schemata in one prompt ("5 DB w. Gold")."""
        structured = [(self.catalog.database(name), tables) for name, tables in candidates]
        cost_before = self.llm.total_cost
        sql, _ = self.llm.generate_sql_multi(example.question, structured)
        cost = self.llm.total_cost - cost_before
        predicted_database = self._database_of_sql(structured, sql)
        predicted = self._execute(predicted_database, sql)
        gold = self._gold_result(example)
        correct = results_equivalent(predicted, gold,
                                     order_sensitive=self._is_ordered(example.sql)) \
            and predicted_database == example.database
        return GenerationResult(question=example.question, predicted_sql=sql,
                                predicted_database=predicted_database,
                                gold_database=example.database, correct=correct, cost=cost,
                                error="" if predicted is not None else "execution failed")

    def _human_in_the_loop_choice(self, example: Example,
                                  candidates: list[tuple[str, list[str]]]) -> tuple[str, list[str]]:
        """Simulate a user picking the best of the top candidates.

        The user recognises their target database and the tables they care
        about, so the candidate from the gold database with the highest gold
        table coverage is selected; when none matches, the top candidate is
        kept (the user cannot invent a schema that was never proposed).
        """
        best = candidates[0]
        best_coverage = -1.0
        for database, tables in candidates:
            if database != example.database:
                continue
            coverage = len(set(tables) & set(example.tables)) / max(len(example.tables), 1)
            if coverage > best_coverage:
                best_coverage = coverage
                best = (database, tables)
        return best

    @staticmethod
    def _database_of_sql(structured: list[tuple[object, list[str]]], sql: str) -> str:
        """Best-effort attribution of multi-schema SQL to one candidate database."""
        try:
            referenced = {ref.table for ref in parse_sql(sql).table_refs()}
        except SqlError:
            referenced = set()
        for database, tables in structured:
            if referenced and referenced <= set(getattr(database, "table_names", tables)):
                return database.name  # type: ignore[union-attr]
        return structured[0][0].name  # type: ignore[union-attr]


def evaluate_nl2sql(pipeline: SchemaAgnosticNL2SQL, examples: Sequence[Example],
                    predictions: Sequence[RoutingPrediction] | None = None) -> Nl2SqlEvaluation:
    """Evaluate EX and cost over ``examples`` (optionally with precomputed routing)."""
    evaluation = Nl2SqlEvaluation()
    for index, example in enumerate(examples):
        prediction = predictions[index] if predictions is not None else None
        result = pipeline.answer(example, prediction=prediction)
        evaluation.results.append(result)
        evaluation.total_cost += result.cost
    return evaluation
