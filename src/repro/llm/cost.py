"""LLM invocation cost model.

The paper reports the dollar cost of LLM calls alongside execution accuracy
(Table 6).  The cost model here uses the public ``gpt-3.5-turbo-0125`` prices
and a simple word-based token estimate, so that prompt strategies that send
more schema text cost proportionally more -- the effect the oracle test
demonstrates when moving from gold columns to five full database schemata.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Approximate tokens per whitespace-separated word for English + SQL text.
_TOKENS_PER_WORD = 1.35


def count_tokens(text: str) -> int:
    """Estimate the number of model tokens in ``text``."""
    words = len(text.split())
    return int(round(words * _TOKENS_PER_WORD))


@dataclass(frozen=True)
class CostModel:
    """Per-token pricing (USD per 1K tokens), defaulting to gpt-3.5-turbo-0125."""

    input_price_per_1k: float = 0.0005
    output_price_per_1k: float = 0.0015

    def cost(self, input_tokens: int, output_tokens: int) -> float:
        return (input_tokens * self.input_price_per_1k
                + output_tokens * self.output_price_per_1k) / 1000.0

    def cost_of_call(self, prompt: str, completion: str) -> float:
        return self.cost(count_tokens(prompt), count_tokens(completion))
