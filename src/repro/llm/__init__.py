"""SQL generation with a (simulated) large language model.

The paper's second stage prompts ``gpt-3.5-turbo`` with the routed schema and
the question to produce SQL (§3.6), exploring three prompt strategies plus a
human-in-the-loop variant, and reports execution accuracy (EX) and invocation
cost.  No commercial LLM is reachable offline, so :class:`SimulatedLLM`
substitutes a deterministic heuristic NL2SQL generator whose behaviour
preserves the two sensitivities the paper's Table 6 measures:

* accuracy falls when the prompted schema misses tables the query needs;
* accuracy falls (and cost rises) as extraneous schema elements are added.

Everything else -- prompt construction, candidate-schema selection, the cost
model, execution-accuracy evaluation -- is implemented as in the paper.
"""

from repro.llm.cost import CostModel, count_tokens
from repro.llm.prompts import (
    PromptStrategy,
    SchemaPrompt,
    render_schema_block,
    build_best_schema_prompt,
    build_multiple_schema_prompt,
    build_cot_selection_prompt,
)
from repro.llm.sqlgen import HeuristicSqlGenerator
from repro.llm.client import LlmResponse, SimulatedLLM
from repro.llm.pipeline import (
    GenerationResult,
    Nl2SqlEvaluation,
    SchemaAgnosticNL2SQL,
    evaluate_nl2sql,
)
from repro.llm.oracle import OracleSchemaProvider

__all__ = [
    "CostModel",
    "count_tokens",
    "PromptStrategy",
    "SchemaPrompt",
    "render_schema_block",
    "build_best_schema_prompt",
    "build_multiple_schema_prompt",
    "build_cot_selection_prompt",
    "HeuristicSqlGenerator",
    "LlmResponse",
    "SimulatedLLM",
    "GenerationResult",
    "Nl2SqlEvaluation",
    "SchemaAgnosticNL2SQL",
    "evaluate_nl2sql",
    "OracleSchemaProvider",
]
