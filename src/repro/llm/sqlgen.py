"""Heuristic NL2SQL generation: the core of the simulated LLM.

The generator receives the question and the schema that was present in the
prompt (the tables it is allowed to reference) and produces a SQL string.  It
mimics how a capable LLM behaves with a schema-aware prompt:

* it resolves paraphrases back to schema vocabulary (LLMs are good at this,
  so the full synonym lexicon is used);
* it picks the tables and columns that best match the question *among the
  prompted ones* -- which is precisely why extraneous schema elements hurt
  (more candidates to confuse) and missing tables are fatal (the needed table
  cannot be referenced at all);
* it composes joins through shared key columns, aggregates, superlatives,
  grouped counts, and filters, covering the query shapes of the workload.

The output is plain SQL text; the evaluation parses and executes it like any
other model output, so malformed or semantically wrong SQL simply scores zero
execution accuracy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.datasets.vocabulary import SYNONYM_LEXICON
from repro.schema.column import ColumnType
from repro.schema.database import Database
from repro.schema.table import Table
from repro.utils.text import singularize, tokenize_text


def _reverse_lexicon() -> dict[str, str]:
    reverse: dict[str, str] = {}
    for canonical, paraphrases in SYNONYM_LEXICON.items():
        for phrase in paraphrases:
            for word in tokenize_text(phrase):
                # A word that is itself schema vocabulary keeps its identity
                # ("country" must not be folded into "nationality").
                if word in SYNONYM_LEXICON:
                    continue
                reverse.setdefault(word, canonical)
    return reverse


_REVERSE_LEXICON = _reverse_lexicon()

_STOPWORDS = {
    "what", "which", "who", "whose", "where", "when", "is", "are", "was", "were",
    "the", "a", "an", "of", "for", "with", "in", "on", "to", "and", "or", "all",
    "every", "each", "list", "show", "find", "give", "return", "that", "have",
    "has", "there", "than", "at", "least", "most", "by", "from", "belonging",
    "linked", "associated", "connected", "values", "value", "their", "them",
    "together", "through", "given", "across", "do", "does", "total",
}

#: Markers splitting the "asked about" part from the "related / filtered" part.
_RELATION_MARKERS = (
    " belonging to the ", " belonging to ", " for the ", " linked to the ",
    " linked to ", " associated with ", " connected to a ", " connected to ",
    " have at least one ", " have a ", " of the ", " related to ",
)

_GROUPED_MARKERS = (" has the most ", " with the largest number of ",
                    " with the most ", " have the most ")

_COUNT_HINTS = ("how many", "count the", "number of", "what is the number")
_HIGH_SUPERLATIVES = ("highest", "largest", "most", "biggest", "greatest", "top")
_LOW_SUPERLATIVES = ("lowest", "smallest", "fewest", "least")


@dataclass
class _QuestionAnalysis:
    concepts: list[str] = field(default_factory=list)
    prefix_concepts: list[str] = field(default_factory=list)
    suffix_concepts: list[str] = field(default_factory=list)
    grouped_suffix: list[str] = field(default_factory=list)
    count: bool = False
    aggregate: str | None = None
    superlative_desc: bool = False
    superlative_asc: bool = False
    grouped_count: bool = False
    distinct: bool = False
    nested_extreme: str | None = None
    filter_value: str | None = None
    filter_numeric: float | None = None
    numeric_greater: bool = False


class HeuristicSqlGenerator:
    """Generates SQL for a question against the prompted schema."""

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, question: str, database: Database, tables: list[str],
                 columns_filter: dict[str, list[str]] | None = None) -> str:
        """Generate SQL text referencing only ``tables`` of ``database``.

        ``columns_filter`` restricts the columns visible for a table (the
        gold-columns oracle prompt); fewer visible columns mean fewer ways to
        pick the wrong one.
        """
        available = [database.table(name) for name in tables if database.has_table(name)]
        if columns_filter:
            available = [self._restrict_columns(table, columns_filter.get(table.name))
                         for table in available]
        if not available:
            return "SELECT 1"
        analysis = self._analyse(question)
        target = self._pick_target(analysis, available)

        if analysis.grouped_count:
            grouped = self._compose_grouped_count(analysis, available, target)
            if grouped is not None:
                return grouped

        secondary = self._pick_secondary(analysis, available, target)
        display = self._pick_display_column(analysis, target)
        filter_clause, filter_table = self._build_filter(analysis, available, target, secondary)

        join_tables: list[Table] = [target]
        if filter_table is not None and filter_table.name != target.name:
            path = self._join_path(available, target, filter_table)
            if path is not None:
                join_tables = path
            else:
                # The connector table is missing from the prompt; the model has
                # to fall back to a single-table query, which is usually wrong.
                filter_clause = None
        return self._compose(analysis, join_tables, target, display, filter_clause)

    @staticmethod
    def _restrict_columns(table: Table, wanted: list[str] | None) -> Table:
        if not wanted:
            return table
        wanted_set = set(wanted)
        columns = [column for column in table.columns
                   if column.name in wanted_set or column.is_primary_key
                   or column.name.endswith("_id")]
        return Table(name=table.name, columns=columns or list(table.columns),
                     comment=table.comment)

    # ------------------------------------------------------------------
    # question analysis
    # ------------------------------------------------------------------
    def _concepts(self, text: str) -> list[str]:
        concepts = []
        for token in tokenize_text(text):
            if token in _STOPWORDS:
                continue
            canonical = _REVERSE_LEXICON.get(token, token)
            concepts.append(singularize(canonical))
        return concepts

    def _analyse(self, question: str) -> _QuestionAnalysis:
        lowered = question.lower()
        analysis = _QuestionAnalysis(concepts=self._concepts(question))
        analysis.count = any(hint in lowered for hint in _COUNT_HINTS)

        # Aggregates: earliest hint wins; explicit extremes beat "total"/"sum".
        hint_positions = []
        for hint, function in (("average", "AVG"), ("mean", "AVG"), ("maximum", "MAX"),
                               ("minimum", "MIN"), ("total", "SUM"), ("sum of", "SUM")):
            position = lowered.find(hint)
            if position >= 0:
                hint_positions.append((position, function))
        if hint_positions:
            analysis.aggregate = min(hint_positions)[1]

        analysis.superlative_desc = any(word in lowered for word in _HIGH_SUPERLATIVES)
        analysis.superlative_asc = any(word in lowered for word in _LOW_SUPERLATIVES)

        # Grouped counts: "which X has the most Y".
        for marker in _GROUPED_MARKERS:
            position = lowered.find(marker)
            if position >= 0:
                analysis.grouped_count = True
                analysis.prefix_concepts = self._concepts(lowered[:position])
                analysis.grouped_suffix = self._concepts(lowered[position + len(marker):])
                break

        if not analysis.grouped_count:
            split_position = None
            split_marker = ""
            for marker in _RELATION_MARKERS:
                position = lowered.find(marker)
                if position >= 0 and (split_position is None or position < split_position):
                    split_position = position
                    split_marker = marker
            if split_position is not None:
                analysis.prefix_concepts = self._concepts(lowered[:split_position])
                analysis.suffix_concepts = self._concepts(
                    lowered[split_position + len(split_marker):])
                if split_marker in (" have a ", " have at least one "):
                    # "which X have a Y ..." joins one-to-many and needs DISTINCT
                    # to match the semantics of the nested IN formulation.
                    analysis.distinct = True
            else:
                analysis.prefix_concepts = list(analysis.concepts)

        # "whose <column> is the largest" asks for the rows attaining the extreme
        # value (ties included), which needs a nested sub-query, not LIMIT 1.
        nested = re.search(r"whose ([\w ]+?) is the (largest|smallest|highest|lowest|maximum|minimum)", lowered)
        if nested:
            analysis.nested_extreme = "MAX" if nested.group(2) in ("largest", "highest", "maximum") else "MIN"

        # Equality filter value: the text after the *last* " is " when it looks
        # like a literal (short, not an article-led noun phrase).
        position = lowered.rfind(" is ")
        if position >= 0:
            tail = question[position + 4:].strip().rstrip("?.").strip()
            words = tail.split()
            if words and len(words) <= 4 and words[0].lower() not in ("the", "a", "an") \
                    and tail.lower() not in ("true", "false"):
                analysis.filter_value = tail
        numeric = re.search(r"(greater|more|higher|less|lower|fewer) than (\d+(?:\.\d+)?)", lowered)
        if numeric:
            analysis.filter_numeric = float(numeric.group(2))
            analysis.numeric_greater = numeric.group(1) in ("greater", "more", "higher")
        return analysis

    # ------------------------------------------------------------------
    # schema matching
    # ------------------------------------------------------------------
    @staticmethod
    def _table_words(table: Table) -> set[str]:
        return {singularize(word) for word in table.words}

    @staticmethod
    def _column_words(table: Table) -> set[str]:
        return {singularize(word) for column in table.columns for word in column.words}

    def _score_table(self, concepts: list[str], table: Table) -> float:
        words = self._table_words(table)
        column_words = self._column_words(table)
        score = 0.0
        for concept in concepts:
            if concept in words:
                score += 2.0
            elif concept in column_words:
                score += 0.5
        if words and words <= set(concepts):
            # Every word of the table name is mentioned: an exact entity match
            # beats multi-word tables that merely share one word.
            score += 1.0
        # Narrow tables win ties, the way an LLM prefers the obvious table.
        return score - 0.01 * len(table.columns)

    def _pick_target(self, analysis: _QuestionAnalysis, available: list[Table]) -> Table:
        concepts = analysis.prefix_concepts or analysis.concepts
        best = max(available, key=lambda table: self._score_table(concepts, table))
        if self._score_table(concepts, best) < 1.5:
            # The prefix did not clearly name a table; use the whole question.
            best = max(available, key=lambda table: self._score_table(analysis.concepts, table))
        return best

    def _pick_secondary(self, analysis: _QuestionAnalysis, available: list[Table],
                        target: Table) -> Table | None:
        if not analysis.suffix_concepts:
            return None
        candidates = [table for table in available if table.name != target.name]
        if not candidates:
            return None
        best = max(candidates, key=lambda table: self._score_table(analysis.suffix_concepts, table))
        if self._score_table(analysis.suffix_concepts, best) < 1.5:
            return None
        return best

    def _column_score(self, concepts: list[str], column_name: str) -> float:
        words = {singularize(word) for word in tokenize_text(column_name)}
        return sum(1.0 for concept in concepts if concept in words)

    def _identity_column(self, table: Table) -> str | None:
        for column in table.columns:
            if column.name in ("name", "title"):
                return column.name
        for column in table.columns:
            if column.name.endswith("_name") or column.name.endswith("_title"):
                return column.name
        return None

    def _pick_display_column(self, analysis: _QuestionAnalysis, table: Table) -> str:
        concepts = analysis.prefix_concepts or analysis.concepts
        candidates = [column for column in table.columns
                      if not column.is_primary_key and not column.name.endswith("_id")]
        if not candidates:
            candidates = list(table.columns)
        scored = sorted(candidates, key=lambda column: (
            -self._column_score(concepts, column.name),
            0 if column.column_type is ColumnType.TEXT else 1,
        ))
        best = scored[0]
        wants_extreme = (analysis.superlative_desc or analysis.superlative_asc
                         or analysis.nested_extreme is not None)
        if wants_extreme and best.column_type.is_numeric:
            # "Which singer has the highest age?" asks for the singer (identity
            # column), not for the age value itself.
            identity = self._identity_column(table)
            if identity is not None:
                return identity
        if self._column_score(concepts, best.name) <= 0:
            # No column is mentioned explicitly: "which singer ..." asks for
            # the identity column.
            identity = self._identity_column(table)
            if identity is not None:
                return identity
        return best.name

    def _numeric_column(self, analysis: _QuestionAnalysis, table: Table) -> str | None:
        candidates = [column for column in table.columns
                      if column.column_type.is_numeric and not column.is_primary_key
                      and not column.name.endswith("_id")]
        if not candidates:
            return None
        concepts = analysis.concepts
        return max(candidates, key=lambda column: self._column_score(concepts, column.name)).name

    # ------------------------------------------------------------------
    # filters
    # ------------------------------------------------------------------
    def _build_filter(self, analysis: _QuestionAnalysis, available: list[Table],
                      target: Table, secondary: Table | None) -> tuple[str | None, Table | None]:
        # Prefer placing the filter on the secondary (related) table when one
        # was identified; otherwise on the target, then any prompted table.
        if secondary is not None:
            search_order = [secondary, target]
        else:
            search_order = [target] + [table for table in available if table.name != target.name]
        concepts = analysis.suffix_concepts or analysis.concepts
        if analysis.filter_value is not None:
            found = self._find_filter_column(concepts, search_order, prefer_text=True)
            if found is not None:
                column, table = found
                value = analysis.filter_value.replace("'", "''")
                return f"{table.name}.{column} = '{value}'", table
        if analysis.filter_numeric is not None:
            found = self._find_filter_column(concepts, search_order, prefer_text=False)
            if found is not None:
                column, table = found
                operator = ">" if analysis.numeric_greater else "<"
                return f"{table.name}.{column} {operator} {analysis.filter_numeric}", table
        return None, None

    def _find_filter_column(self, concepts: list[str], search_order: list[Table],
                            prefer_text: bool) -> tuple[str, Table] | None:
        best: tuple[float, str, Table] | None = None
        for priority, table in enumerate(search_order):
            for column in table.columns:
                if column.is_primary_key or column.name.endswith("_id"):
                    continue
                is_text = column.column_type in (ColumnType.TEXT, ColumnType.DATE)
                if prefer_text != is_text:
                    continue
                score = self._column_score(concepts, column.name) - 0.1 * priority
                if score <= 0:
                    continue
                if best is None or score > best[0]:
                    best = (score, column.name, table)
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def _join_path(self, available: list[Table], start: Table, goal: Table) -> list[Table] | None:
        """Breadth-first join path between two prompted tables via shared keys."""
        by_name = {table.name: table for table in available}
        frontier = [[start.name]]
        visited = {start.name}
        while frontier:
            path = frontier.pop(0)
            current = by_name[path[-1]]
            if current.name == goal.name:
                return [by_name[name] for name in path]
            for other in available:
                if other.name in visited:
                    continue
                if self._shared_key(current, other) is not None:
                    visited.add(other.name)
                    frontier.append(path + [other.name])
        return None

    @staticmethod
    def _shared_key(left: Table, right: Table) -> str | None:
        left_keys = [column.name for column in left.columns if column.name.endswith("_id")]
        right_keys = {column.name for column in right.columns if column.name.endswith("_id")}
        for key in left_keys:
            if key in right_keys:
                return key
        return None

    # ------------------------------------------------------------------
    # SQL composition
    # ------------------------------------------------------------------
    def _compose_grouped_count(self, analysis: _QuestionAnalysis, available: list[Table],
                               target: Table) -> str | None:
        """"Which X has the most Y" -> grouped count over the join of X and Y."""
        candidates = [table for table in available if table.name != target.name]
        if not candidates:
            return None
        child = max(candidates,
                    key=lambda table: self._score_table(analysis.grouped_suffix, table))
        if self._score_table(analysis.grouped_suffix, child) < 1.5:
            return None
        path = self._join_path(available, child, target)
        if path is None:
            return None
        display = self._pick_display_column(analysis, target)
        join_clauses = []
        for previous, current in zip(path, path[1:]):
            key = self._shared_key(previous, current)
            join_clauses.append(f"JOIN {current.name} ON {previous.name}.{key} = {current.name}.{key}")
        direction = "ASC" if analysis.superlative_asc and not analysis.superlative_desc else "DESC"
        return " ".join([
            f"SELECT {target.name}.{display}",
            f"FROM {path[0].name}", *join_clauses,
            f"GROUP BY {target.name}.{display}",
            f"ORDER BY COUNT(*) {direction}", "LIMIT 1",
        ])

    def _compose(self, analysis: _QuestionAnalysis, join_tables: list[Table], target: Table,
                 display_column: str, filter_clause: str | None) -> str:
        projection = f"{target.name}.{display_column}"
        if analysis.distinct and not analysis.count and analysis.aggregate is None:
            projection = f"DISTINCT {projection}"
        if analysis.count:
            projection = "COUNT(*)"
        elif analysis.aggregate is not None:
            numeric = self._numeric_column(analysis, target)
            if numeric is not None:
                projection = f"{analysis.aggregate}({target.name}.{numeric})"

        # Ties-aware extremes: "whose <col> is the largest" selects every row
        # attaining the extreme via a nested sub-query.
        if analysis.nested_extreme is not None and analysis.aggregate is None and not analysis.count:
            numeric = self._numeric_column(analysis, target)
            if numeric is not None and len(join_tables) == 1:
                return (f"SELECT {target.name}.{display_column} FROM {target.name} "
                        f"WHERE {target.name}.{numeric} = "
                        f"(SELECT {analysis.nested_extreme}({numeric}) FROM {target.name})")

        from_clause = f"FROM {join_tables[0].name}"
        join_clauses = []
        for previous, current in zip(join_tables, join_tables[1:]):
            key = self._shared_key(previous, current)
            if key is None:
                continue
            join_clauses.append(
                f"JOIN {current.name} ON {previous.name}.{key} = {current.name}.{key}"
            )

        where = f"WHERE {filter_clause}" if filter_clause else ""
        order = ""
        limit = ""
        if (analysis.superlative_desc or analysis.superlative_asc) \
                and not analysis.count and analysis.aggregate is None:
            numeric = self._numeric_column(analysis, target)
            if numeric is not None and numeric != display_column:
                direction = "DESC" if analysis.superlative_desc else "ASC"
                order = f"ORDER BY {target.name}.{numeric} {direction}"
                limit = "LIMIT 1"

        parts = [f"SELECT {projection}", from_clause, *join_clauses, where, order, limit]
        return " ".join(part for part in parts if part)
