"""Efficiency & resource consumption (Table 5)."""

from __future__ import annotations

import sys
import time

from repro.experiments.context import CollectionContext
from repro.experiments.routing import routing_methods
from repro.utils.tables import ResultTable


def _approximate_size_mb(retriever: object) -> float:
    """Rough persistent-size estimate of a method's index/model in megabytes."""
    total_bytes = 0
    seen: set[int] = set()
    stack = [retriever]
    while stack:
        value = stack.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        if hasattr(value, "nbytes"):
            total_bytes += int(value.nbytes)
            continue
        total_bytes += sys.getsizeof(value, 0)
        if hasattr(value, "__dict__"):
            stack.extend(vars(value).values())
        elif isinstance(value, dict):
            stack.extend(value.keys())
            stack.extend(value.values())
        elif isinstance(value, (list, tuple, set)):
            stack.extend(list(value)[:10000])
    return total_bytes / (1024 * 1024)


def efficiency_table(context: CollectionContext, num_queries: int = 60) -> ResultTable:
    """Reproduce Table 5: QPS, build time, and index size per routing method.

    GPU memory is not applicable on the numpy substrate and is reported as the
    model's parameter memory for DBCopilot ("-" for index-based methods).
    """
    table = ResultTable(
        title="Table 5: method efficiency and resource consumption",
        columns=["method", "QPS", "build_s", "size_MB", "model_params"],
    )
    methods = routing_methods(context)
    examples = context.test_examples()[:num_queries]
    build_times = {
        "bm25": context.stopwatch.total("index_bm25"),
        "sxfmr": context.stopwatch.total("index_sxfmr"),
        "crush_bm25": context.stopwatch.total("index_crush_bm25"),
        "crush_sxfmr": context.stopwatch.total("index_crush_sxfmr"),
        "bm25_ft": context.stopwatch.total("index_bm25") + context.stopwatch.total("finetune_bm25"),
        "dtr": context.stopwatch.total("finetune_dtr"),
        "dbcopilot": context.stopwatch.total("copilot_build"),
    }
    for name, predict in methods.items():
        start = time.perf_counter()
        for example in examples:
            predict(example.question)
        elapsed = max(time.perf_counter() - start, 1e-9)
        qps = len(examples) / elapsed
        if name == "dbcopilot" and context.copilot is not None:
            size = context.copilot.router.num_parameters() * 8 / (1024 * 1024)
            parameters = context.copilot.router.num_parameters()
        else:
            size = _approximate_size_mb(context.baselines[name])
            parameters = 0
        table.add_row(name, round(qps, 1), round(build_times.get(name, 0.0), 1),
                      round(size, 2), parameters)
    return table
