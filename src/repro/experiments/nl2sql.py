"""Schema-agnostic NL2SQL evaluation (Table 6)."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.context import CollectionContext
from repro.llm import (
    Nl2SqlEvaluation,
    OracleSchemaProvider,
    PromptStrategy,
    SchemaAgnosticNL2SQL,
    SimulatedLLM,
)
from repro.utils.tables import ResultTable

#: Routing methods compared for end-to-end NL2SQL (a sparse, a dense, and ours,
#: mirroring the paper's choice of CRUSH_BM25, DTR, and DBCopilot).
NL2SQL_METHODS = ("crush_bm25", "dtr", "dbcopilot")


def _pipeline(context: CollectionContext, strategy: PromptStrategy,
              router=None) -> SchemaAgnosticNL2SQL:
    llm = SimulatedLLM(catalog=context.dataset.catalog)
    return SchemaAgnosticNL2SQL(context.dataset.catalog, context.dataset.instances, llm,
                                router=router, strategy=strategy)


def oracle_rows(context: CollectionContext, examples=None) -> list[tuple[str, Nl2SqlEvaluation]]:
    """The four oracle (upper bound) rows of Table 6."""
    examples = examples if examples is not None else context.test_examples()
    oracle = OracleSchemaProvider(context.dataset.catalog)
    rows: list[tuple[str, Nl2SqlEvaluation]] = []

    def evaluate(label: str, answer) -> None:
        pipeline = _pipeline(context, PromptStrategy.BEST_SCHEMA)
        evaluation = Nl2SqlEvaluation()
        for example in examples:
            result = answer(pipeline, example)
            evaluation.results.append(result)
            evaluation.total_cost += result.cost
        rows.append((label, evaluation))

    evaluate("Gold T. & C.", lambda pipeline, example: pipeline.answer_with_schema(
        example, *oracle.gold_tables_and_columns(example)[:2],
        oracle.gold_tables_and_columns(example)[2]))
    evaluate("Gold T.", lambda pipeline, example: pipeline.answer_with_schema(
        example, *oracle.gold_tables(example)))
    evaluate("Gold DB", lambda pipeline, example: pipeline.answer_with_schema(
        example, *oracle.gold_database(example)))
    evaluate("5 DB w. Gold", lambda pipeline, example: pipeline.answer_with_candidates(
        example, oracle.five_databases(example)))
    return rows


def strategy_rows(context: CollectionContext, strategy: PromptStrategy,
                  methods: Sequence[str] = NL2SQL_METHODS,
                  examples=None) -> list[tuple[str, Nl2SqlEvaluation]]:
    """EX / cost rows for one prompt strategy across routing methods."""
    from repro.experiments.routing import routing_methods

    examples = examples if examples is not None else context.test_examples()
    available = routing_methods(context)
    rows: list[tuple[str, Nl2SqlEvaluation]] = []
    for name in methods:
        router = available.get(name)
        if router is None:
            continue
        pipeline = _pipeline(context, strategy, router=router)
        evaluation = Nl2SqlEvaluation()
        for example in examples:
            result = pipeline.answer(example)
            evaluation.results.append(result)
            evaluation.total_cost += result.cost
        rows.append((name, evaluation))
    return rows


def nl2sql_table(context: CollectionContext, examples=None,
                 include_oracle: bool = True) -> ResultTable:
    """Reproduce Table 6 for one collection."""
    table = ResultTable(
        title=f"Table 6: schema-agnostic NL2SQL on {context.name}",
        columns=["section", "method", "EX", "cost_usd"],
    )
    examples = examples if examples is not None else context.test_examples()
    if include_oracle:
        for label, evaluation in oracle_rows(context, examples):
            row = evaluation.as_row()
            table.add_row("Oracle", label, row["EX"], f"{row['cost']:.4f}")
    sections = (
        ("Best Schema Prompting", PromptStrategy.BEST_SCHEMA),
        ("Multiple Schema Prompting", PromptStrategy.MULTIPLE_SCHEMA),
        ("Multiple Schema COT Prompting", PromptStrategy.MULTIPLE_SCHEMA_COT),
        ("Human in the Loop", PromptStrategy.HUMAN_IN_THE_LOOP),
    )
    for section, strategy in sections:
        for name, evaluation in strategy_rows(context, strategy, examples=examples):
            row = evaluation.as_row()
            table.add_row(section, name, row["EX"], f"{row['cost']:.4f}")
    return table
