"""Synthetic-data scaling study (Figure 10)."""

from __future__ import annotations

from typing import Sequence

from repro.core.questioner import TemplateQuestioner
from repro.core.router import SchemaRouter
from repro.core.sampling import SchemaSampler
from repro.core.synthesis import SynthesisConfig, synthesize_training_data
from repro.experiments.context import CollectionContext
from repro.experiments.routing import evaluate_method
from repro.utils.tables import ResultTable


def data_scaling_table(context: CollectionContext,
                       sample_sizes: Sequence[int] = (500, 1000, 2000, 3000),
                       ) -> ResultTable:
    """Reproduce Figure 10: recall vs the amount of synthetic training data."""
    assert context.copilot is not None
    graph = context.copilot.graph
    questioner = TemplateQuestioner(catalog=context.dataset.catalog,
                                    seed=context.config.seed)
    examples = context.test_examples()
    table = ResultTable(
        title=f"Figure 10: routing recall vs synthetic data volume ({context.name})",
        columns=["num_synthetic", "db_R@1", "tab_R@5"],
    )
    for size in sample_sizes:
        sampler = SchemaSampler(graph, config=context.config.sampler, seed=context.config.seed)
        report = synthesize_training_data(sampler, questioner,
                                          SynthesisConfig(num_samples=size))
        router = SchemaRouter(graph=graph, config=context.copilot.config.router)
        router.fit(report.examples)
        scores = evaluate_method(router.predict, examples).as_row()
        table.add_row(size, scores["db_recall@1"], scores["table_recall@5"])
    return table
