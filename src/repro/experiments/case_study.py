"""Qualitative routing case studies (Figures 8 & 9)."""

from __future__ import annotations

from repro.experiments.context import CollectionContext
from repro.experiments.routing import routing_methods
from repro.utils.tables import ResultTable


def case_study_table(context: CollectionContext, num_cases: int = 4) -> ResultTable:
    """Show, per question, the best schema routed by every method.

    The paper's Figure 8 shows a success case where only DBCopilot finds the
    correct schema and Figure 9 a failure case where a baseline happens to
    cover the gold tables; printing a handful of multi-table questions with the
    gold schema and every method's top candidate reproduces both kinds of
    evidence.
    """
    methods = routing_methods(context)
    examples = [example for example in context.test_examples()
                if len(example.tables) >= 2][:num_cases]
    table = ResultTable(
        title=f"Figures 8/9: routing case studies on {context.name}",
        columns=["question", "method", "database", "tables", "matches_gold"],
    )
    for example in examples:
        table.add_row(example.question[:60], "GOLD", example.database,
                      ",".join(example.tables), True)
        for name, predict in methods.items():
            prediction = predict(example.question)
            best = prediction.best_schema
            if best is None:
                table.add_row("", name, "-", "-", False)
                continue
            matches = (best.database == example.database
                       and set(example.tables) <= set(best.tables))
            table.add_row("", name, best.database, ",".join(best.tables), matches)
    return table
