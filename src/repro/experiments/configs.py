"""Experiment-wide configuration.

The paper trains T5-base on 1e5 synthetic pairs per collection on an A100;
this reproduction targets CPU minutes.  ``ExperimentConfig`` captures the
scaled-down defaults and can be grown via the ``REPRO_BENCH_SCALE``
environment variable (``small`` | ``medium`` | ``large``) without touching the
benchmark code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.router import RouterConfig
from repro.core.sampling import SamplerConfig
from repro.core.synthesis import SynthesisConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizes shared by every experiment harness."""

    #: Number of test questions evaluated per dataset (None = all).
    eval_limit: int | None = 120
    #: Synthetic training pairs for the router.
    synthetic_samples: int = 3000
    #: Router training epochs.
    router_epochs: int = 12
    router: RouterConfig = field(default_factory=lambda: RouterConfig(beam_groups=5))
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    seed: int = 0

    def router_config(self) -> RouterConfig:
        return self.router.ablated(epochs=self.router_epochs)

    def synthesis_config(self) -> SynthesisConfig:
        return SynthesisConfig(num_samples=self.synthetic_samples)


_PRESETS = {
    "small": ExperimentConfig(eval_limit=120, synthetic_samples=3000, router_epochs=12),
    "medium": ExperimentConfig(eval_limit=250, synthetic_samples=6000, router_epochs=16),
    "large": ExperimentConfig(eval_limit=None, synthetic_samples=12000, router_epochs=20),
}


def default_config() -> ExperimentConfig:
    """The preset selected by ``REPRO_BENCH_SCALE`` (default ``small``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    return _PRESETS.get(scale, _PRESETS["small"])
