"""Shared experiment context: datasets, baselines, and the trained copilot.

Building a collection, indexing four baselines, fine-tuning DTR, and training
the DBCopilot router is the expensive part of every experiment; the context
caches all of it per (collection, config) so Tables 3/4/6/7 and Figures 7/9
can share the work within one benchmark session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import DBCopilot, DBCopilotConfig
from repro.datasets import (
    BenchmarkDataset,
    build_bird_like,
    build_fiben_like,
    build_spider_like,
    make_realistic_variant,
    make_synonym_variant,
)
from repro.datasets.examples import Example
from repro.experiments.configs import ExperimentConfig, default_config
from repro.retrieval import (
    BM25Retriever,
    ContrastiveTableRetriever,
    CrushRetriever,
    DenseRetriever,
    SchemaRetriever,
    build_table_documents,
)
from repro.retrieval.documents import DocumentCollection
from repro.utils.timing import Stopwatch

_BUILDERS = {
    "spider_like": build_spider_like,
    "bird_like": build_bird_like,
    "fiben_like": build_fiben_like,
}


@dataclass
class CollectionContext:
    """Everything the experiments need for one database collection."""

    name: str
    config: ExperimentConfig
    dataset: BenchmarkDataset
    documents: DocumentCollection
    baselines: dict[str, SchemaRetriever] = field(default_factory=dict)
    copilot: DBCopilot | None = None
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    variants: dict[str, BenchmarkDataset] = field(default_factory=dict)

    # -- evaluation splits ------------------------------------------------------
    def test_examples(self, variant: str = "regular") -> list[Example]:
        if variant == "regular":
            examples = self.dataset.test_examples
        else:
            examples = self.variant(variant).test_examples
        limit = self.config.eval_limit
        return examples[:limit] if limit else examples

    def variant(self, name: str) -> BenchmarkDataset:
        if name not in self.variants:
            if name == "syn":
                self.variants[name] = make_synonym_variant(self.dataset)
            elif name == "real":
                self.variants[name] = make_realistic_variant(self.dataset)
            else:
                raise ValueError(f"unknown variant {name!r}")
        return self.variants[name]

    # -- synthetic pairs shared by fine-tuned baselines ---------------------------------
    def synthetic_pairs(self) -> list[tuple[str, tuple[str, str]]]:
        """(question, (database, table)) pairs from the copilot's synthetic data."""
        if self.copilot is None or self.copilot.build_report.synthesis is None:
            return []
        pairs = []
        for example in self.copilot.build_report.synthesis.examples:
            for table in example.tables:
                pairs.append((example.question, (example.database, table)))
        return pairs

    def synthetic_expansions(self) -> dict[tuple[str, str], list[str]]:
        """Per-table synthetic question text used to 'fine-tune' BM25."""
        expansions: dict[tuple[str, str], list[str]] = {}
        for question, key in self.synthetic_pairs():
            expansions.setdefault(key, []).append(question)
        return expansions


_CACHE: dict[tuple[str, int], CollectionContext] = {}


def clear_context_cache() -> None:
    _CACHE.clear()


def get_context(collection: str = "spider_like", config: ExperimentConfig | None = None,
                with_baselines: bool = True, with_copilot: bool = True) -> CollectionContext:
    """Build (or fetch the cached) context for one collection."""
    config = config or default_config()
    key = (collection, id(config) if config not in (None,) else 0)
    key = (collection, hash((config.eval_limit, config.synthetic_samples, config.router_epochs)))
    context = _CACHE.get(key)
    if context is None:
        builder = _BUILDERS.get(collection)
        if builder is None:
            raise KeyError(f"unknown collection {collection!r}; options: {sorted(_BUILDERS)}")
        dataset = builder()
        documents = build_table_documents(dataset.catalog)
        context = CollectionContext(name=collection, config=config, dataset=dataset,
                                    documents=documents)
        _CACHE[key] = context
    if with_copilot and context.copilot is None:
        with context.stopwatch.measure("copilot_build"):
            context.copilot = DBCopilot.build(
                context.dataset.catalog, context.dataset.instances,
                train_examples=context.dataset.train_examples,
                config=DBCopilotConfig(
                    router=config.router_config(),
                    sampler=config.sampler,
                    synthesis=config.synthesis_config(),
                    seed=config.seed,
                ),
            )
    if with_baselines and not context.baselines:
        _build_baselines(context)
    return context


def _build_baselines(context: CollectionContext) -> None:
    """Index the zero-shot, LLM-enhanced, and fine-tuned baselines of §4.1.3."""
    stopwatch = context.stopwatch
    documents = context.documents

    with stopwatch.measure("index_bm25"):
        bm25 = BM25Retriever()
        bm25.index(documents)
    with stopwatch.measure("index_sxfmr"):
        dense = DenseRetriever()
        dense.index(documents)
    with stopwatch.measure("index_crush_bm25"):
        crush_bm25 = CrushRetriever(BM25Retriever())
        crush_bm25.index(documents)
    with stopwatch.measure("index_crush_sxfmr"):
        crush_dense = CrushRetriever(DenseRetriever())
        crush_dense.index(documents)

    context.baselines = {
        "bm25": bm25,
        "sxfmr": dense,
        "crush_bm25": crush_bm25,
        "crush_sxfmr": crush_dense,
    }

    # Fine-tuned baselines use the same synthetic data as DBCopilot (§4.1.5).
    expansions = context.synthetic_expansions()
    if expansions:
        with stopwatch.measure("finetune_bm25"):
            tuned_bm25 = BM25Retriever()
            tuned_bm25.name = "bm25_ft"
            tuned_bm25.index(documents.expand(expansions))
        context.baselines["bm25_ft"] = tuned_bm25
    pairs = context.synthetic_pairs()
    if pairs:
        with stopwatch.measure("finetune_dtr"):
            dtr = ContrastiveTableRetriever()
            dtr.index(documents)
            dtr.fine_tune(pairs[:4000])
        context.baselines["dtr"] = dtr
