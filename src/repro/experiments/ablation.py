"""Ablation study (Table 7).

Five ablations of the router are compared against the full system:

* ``w/ BS``  -- basic (unordered) serialization instead of DFS serialization.
* ``w/ OD``  -- trained on the original NL2SQL training data only (whose
  databases are disjoint from the test databases, so generative retrieval
  cannot generalise).
* ``w/ MD``  -- trained on the mix of original and synthetic data.
* ``w/o CD`` -- graph-constrained decoding disabled.
* ``w/o DB`` -- diverse beam search replaced by ordinary beam search.
"""

from __future__ import annotations

from repro.core.router import SchemaRouter
from repro.core.synthesis import SyntheticExample
from repro.experiments.context import CollectionContext
from repro.experiments.routing import evaluate_method
from repro.utils.tables import ResultTable


def _original_examples(context: CollectionContext) -> list[SyntheticExample]:
    return [
        SyntheticExample(question=example.question, database=example.database,
                         tables=example.tables)
        for example in context.dataset.train_examples
    ]


def _train_variant(context: CollectionContext, serialization: str = "dfs",
                   data: str = "synthetic") -> SchemaRouter:
    """Train a router variant on the requested serialization / data mix."""
    assert context.copilot is not None, "the full copilot must be built first"
    config = context.copilot.config.router.ablated(serialization=serialization)
    router = SchemaRouter(graph=context.copilot.graph, config=config)
    synthetic = context.copilot.build_report.synthesis.examples \
        if context.copilot.build_report.synthesis else []
    if data == "synthetic":
        examples = list(synthetic)
    elif data == "original":
        examples = _original_examples(context)
    elif data == "mixed":
        examples = list(synthetic) + _original_examples(context)
    else:
        raise ValueError(f"unknown data mix {data!r}")
    router.fit(examples)
    return router


def ablation_table(context: CollectionContext, variant: str = "regular") -> ResultTable:
    """Reproduce Table 7 (performance deltas against the full DBCopilot)."""
    assert context.copilot is not None
    examples = context.test_examples(variant)
    table = ResultTable(
        title=f"Table 7: ablation study on {context.name}",
        columns=["variant", "db_R@1", "db_R@5", "tab_R@5", "tab_R@15"],
    )

    def add(name: str, predict) -> dict[str, float]:
        scores = evaluate_method(predict, examples).as_row()
        table.add_row(name, scores["db_recall@1"], scores["db_recall@5"],
                      scores["table_recall@5"], scores["table_recall@15"])
        return scores

    add("DBCopilot (full)", context.copilot.predict)

    basic = _train_variant(context, serialization="basic")
    add("w/ BS (basic serialization)", basic.predict)

    original = _train_variant(context, data="original")
    add("w/ OD (original data only)", original.predict)

    mixed = _train_variant(context, data="mixed")
    add("w/ MD (mixed data)", mixed.predict)

    # Decoding ablations reuse the fully trained router with altered settings.
    full_router = context.copilot.router
    original_config = full_router.config
    try:
        full_router.config = original_config.ablated(constrained_decoding=False)
        add("w/o CD (no constrained decoding)", full_router.predict)
        full_router.config = original_config.ablated(diverse_beam=False)
        add("w/o DB (no diverse beam search)", full_router.predict)
    finally:
        full_router.config = original_config
    return table
