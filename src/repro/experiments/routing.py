"""Schema-routing experiments: Tables 3 & 4 and Figure 7."""

from __future__ import annotations

from collections import defaultdict
from statistics import mean
from typing import Callable, Sequence

from repro.datasets.examples import Example
from repro.experiments.context import CollectionContext
from repro.retrieval import RoutingScores, evaluate_routing
from repro.retrieval.base import RoutingPrediction
from repro.retrieval.metrics import mean_average_precision, table_recall_at_k
from repro.utils.tables import ResultTable

#: The method order of the paper's Tables 3 and 4.
METHOD_ORDER = ("bm25", "sxfmr", "crush_bm25", "crush_sxfmr", "bm25_ft", "dtr", "dbcopilot")


def routing_methods(context: CollectionContext) -> dict[str, Callable[[str], RoutingPrediction]]:
    """Name -> routing callable for every compared method."""
    methods: dict[str, Callable[[str], RoutingPrediction]] = {}
    for name, retriever in context.baselines.items():
        methods[name] = retriever.route
    if context.copilot is not None:
        methods["dbcopilot"] = context.copilot.predict
    return methods


def evaluate_method(predict: Callable[[str], RoutingPrediction],
                    examples: Sequence[Example]) -> RoutingScores:
    predictions = [predict(example.question) for example in examples]
    return evaluate_routing(predictions,
                            [example.database for example in examples],
                            [example.tables for example in examples])


def routing_table(contexts: Sequence[CollectionContext], variant: str = "regular",
                  title: str = "Table 3: schema routing on regular test sets") -> ResultTable:
    """Reproduce Table 3 (``variant='regular'``) or Table 4 (syn / real)."""
    columns = ["method"]
    for context in contexts:
        columns.extend([
            f"{context.name}_db_R@1", f"{context.name}_db_R@5",
            f"{context.name}_tab_R@5", f"{context.name}_tab_R@15",
        ])
    table = ResultTable(title=title, columns=columns)
    scores_by_method: dict[str, list[RoutingScores]] = defaultdict(list)
    for context in contexts:
        methods = routing_methods(context)
        examples = context.test_examples(variant)
        for name in METHOD_ORDER:
            if name not in methods:
                continue
            scores_by_method[name].append(evaluate_method(methods[name], examples))
    for name in METHOD_ORDER:
        if name not in scores_by_method:
            continue
        row: list[object] = [name]
        for scores in scores_by_method[name]:
            summary = scores.as_row()
            row.extend([summary["db_recall@1"], summary["db_recall@5"],
                        summary["table_recall@5"], summary["table_recall@15"]])
        table.add_row(*row)
    return table


def robustness_table(context: CollectionContext) -> ResultTable:
    """Table 4: routing on the Spider-syn / Spider-real analogues."""
    table = ResultTable(
        title="Table 4: schema routing on robustness tests",
        columns=["method", "syn_db_R@1", "syn_db_R@5", "syn_tab_R@5", "syn_tab_R@15",
                 "real_db_R@1", "real_db_R@5", "real_tab_R@5", "real_tab_R@15"],
    )
    methods = routing_methods(context)
    syn_examples = context.test_examples("syn")
    real_examples = context.test_examples("real")
    for name in METHOD_ORDER:
        if name not in methods:
            continue
        syn = evaluate_method(methods[name], syn_examples).as_row()
        real = evaluate_method(methods[name], real_examples).as_row()
        table.add_row(name, syn["db_recall@1"], syn["db_recall@5"], syn["table_recall@5"],
                      syn["table_recall@15"], real["db_recall@1"], real["db_recall@5"],
                      real["table_recall@5"], real["table_recall@15"])
    return table


# -- Figure 7 ---------------------------------------------------------------------

def map_by_database_size(context: CollectionContext, variant: str = "regular",
                         buckets: Sequence[tuple[int, int]] = ((2, 4), (5, 7), (8, 10), (11, 99)),
                         ) -> ResultTable:
    """Figure 7a: table mAP bucketed by the size of the gold database."""
    methods = routing_methods(context)
    examples = context.test_examples(variant)
    size_of = {database.name: database.num_tables for database in context.dataset.catalog}
    table = ResultTable(
        title="Figure 7a: table mAP by gold-database size (number of tables)",
        columns=["method"] + [f"{low}-{high if high < 99 else '+'}" for low, high in buckets],
    )
    predictions_cache: dict[str, list[RoutingPrediction]] = {
        name: [methods[name](example.question) for example in examples]
        for name in METHOD_ORDER if name in methods
    }
    for name in METHOD_ORDER:
        if name not in predictions_cache:
            continue
        row: list[object] = [name]
        for low, high in buckets:
            values = [
                mean_average_precision(prediction, example.database, example.tables)
                for prediction, example in zip(predictions_cache[name], examples)
                if low <= size_of.get(example.database, 0) <= high
            ]
            row.append(round(100.0 * mean(values), 2) if values else "-")
        table.add_row(*row)
    return table


def recall_at_k_curve(context: CollectionContext, variant: str = "regular",
                      ks: Sequence[int] = (1, 5, 10, 20, 30, 50)) -> ResultTable:
    """Figure 7b: table recall@k as the number of retrieved tables grows."""
    methods = routing_methods(context)
    examples = context.test_examples(variant)
    table = ResultTable(
        title="Figure 7b: table recall@k vs number of retrieved tables",
        columns=["method"] + [f"R@{k}" for k in ks],
    )
    for name in METHOD_ORDER:
        if name not in methods:
            continue
        predictions = [methods[name](example.question) for example in examples]
        row: list[object] = [name]
        for k in ks:
            value = mean(
                table_recall_at_k(prediction, example.database, example.tables, k)
                for prediction, example in zip(predictions, examples)
            )
            row.append(round(100.0 * value, 2))
        table.add_row(*row)
    return table
