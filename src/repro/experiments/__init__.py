"""Experiment harnesses that regenerate every table and figure of the paper.

Each module corresponds to one artefact of the evaluation section:

* :mod:`repro.experiments.routing`     -- Tables 3 & 4, Figure 7.
* :mod:`repro.experiments.efficiency`  -- Table 5.
* :mod:`repro.experiments.nl2sql`      -- Table 6.
* :mod:`repro.experiments.ablation`    -- Table 7.
* :mod:`repro.experiments.data_scaling`-- Figure 10.
* :mod:`repro.experiments.case_study`  -- Figures 8 & 9.

The shared :mod:`repro.experiments.context` builds (and caches) the synthetic
collections, baseline indexes, and the trained DBCopilot per collection so the
benchmark scripts do not repeat expensive work.
"""

from repro.experiments.configs import ExperimentConfig, default_config
from repro.experiments.context import CollectionContext, get_context, clear_context_cache

__all__ = [
    "ExperimentConfig",
    "default_config",
    "CollectionContext",
    "get_context",
    "clear_context_cache",
]
