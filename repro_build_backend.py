"""Minimal in-tree PEP 517/660 build backend (stdlib only).

The standard setuptools backend cannot build editable installs on
environments without the third-party ``wheel`` package.  This repo builds its
neural substrate from scratch on numpy; its build backend follows suit: a
wheel is just a zip archive with a ``dist-info`` directory, and an *editable*
wheel is that plus a ``.pth`` file pointing at ``src/``.  Both are produced
here with nothing beyond the standard library, so ``pip install -e .`` works
on a bare Python.

Metadata is read from ``pyproject.toml``'s ``[project]`` table.
"""

from __future__ import annotations

import base64
import hashlib
import io
import os
import tarfile
import tomllib
import zipfile

_GENERATOR = "repro-build-backend (1.0)"


def _project() -> dict:
    with open("pyproject.toml", "rb") as handle:
        return tomllib.load(handle)["project"]


def _dist_name(project: dict) -> str:
    return project["name"].replace("-", "_")


def _metadata_text(project: dict) -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {project['name']}",
        f"Version: {project['version']}",
    ]
    if "description" in project:
        lines.append(f"Summary: {project['description']}")
    if "requires-python" in project:
        lines.append(f"Requires-Python: {project['requires-python']}")
    for requirement in project.get("dependencies", ()):
        lines.append(f"Requires-Dist: {requirement}")
    for extra, requirements in project.get("optional-dependencies", {}).items():
        lines.append(f"Provides-Extra: {extra}")
        for requirement in requirements:
            lines.append(f'Requires-Dist: {requirement}; extra == "{extra}"')
    readme = project.get("readme")
    body = ""
    if isinstance(readme, str) and os.path.isfile(readme):
        lines.append("Description-Content-Type: text/markdown")
        with open(readme, "r", encoding="utf-8") as handle:
            body = "\n" + handle.read()
    return "\n".join(lines) + "\n" + body


def _wheel_text(editable: bool) -> str:
    return (
        "Wheel-Version: 1.0\n"
        f"Generator: {_GENERATOR}\n"
        "Root-Is-Purelib: true\n"
        "Tag: py3-none-any\n"
    )


def _record_entry(path: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=")
    return f"{path},sha256={digest.decode('ascii')},{len(data)}"


def _write_wheel(wheel_directory: str, files: dict[str, bytes], project: dict) -> str:
    dist = _dist_name(project)
    version = project["version"]
    info = f"{dist}-{version}.dist-info"
    files = dict(files)
    files[f"{info}/METADATA"] = _metadata_text(project).encode("utf-8")
    files[f"{info}/WHEEL"] = _wheel_text(editable=False).encode("utf-8")
    record = [_record_entry(path, data) for path, data in files.items()]
    record.append(f"{info}/RECORD,,")
    files[f"{info}/RECORD"] = ("\n".join(record) + "\n").encode("utf-8")
    wheel_name = f"{dist}-{version}-py3-none-any.whl"
    os.makedirs(wheel_directory, exist_ok=True)
    with zipfile.ZipFile(os.path.join(wheel_directory, wheel_name), "w",
                         zipfile.ZIP_DEFLATED) as archive:
        for path, data in files.items():
            archive.writestr(path, data)
    return wheel_name


def _package_files() -> dict[str, bytes]:
    files: dict[str, bytes] = {}
    for root, directories, names in os.walk("src"):
        directories[:] = [name for name in directories if name != "__pycache__"]
        for name in sorted(names):
            if name.endswith(".pyc"):
                continue
            full = os.path.join(root, name)
            archive_path = os.path.relpath(full, "src").replace(os.sep, "/")
            with open(full, "rb") as handle:
                files[archive_path] = handle.read()
    return files


# -- PEP 517 hooks -------------------------------------------------------------
def get_requires_for_build_wheel(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    """A regular wheel containing everything under ``src/``."""
    return _write_wheel(wheel_directory, _package_files(), _project())


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    """PEP 660 editable wheel: a ``.pth`` entry pointing at ``src/``."""
    project = _project()
    pth = os.path.abspath("src") + "\n"
    files = {f"__editable__.{_dist_name(project)}.pth": pth.encode("utf-8")}
    return _write_wheel(wheel_directory, files, project)


def build_sdist(sdist_directory, config_settings=None):
    """Source archive: the tracked sources plus PKG-INFO."""
    project = _project()
    base = f"{_dist_name(project)}-{project['version']}"
    sdist_name = f"{base}.tar.gz"
    os.makedirs(sdist_directory, exist_ok=True)
    with tarfile.open(os.path.join(sdist_directory, sdist_name), "w:gz") as archive:
        metadata = _metadata_text(project).encode("utf-8")
        info = tarfile.TarInfo(f"{base}/PKG-INFO")
        info.size = len(metadata)
        archive.addfile(info, io.BytesIO(metadata))
        for path in ("pyproject.toml", "setup.py", "README.md",
                     "repro_build_backend.py"):
            if os.path.isfile(path):
                archive.add(path, arcname=f"{base}/{path}")
        for archive_path, data in _package_files().items():
            info = tarfile.TarInfo(f"{base}/src/{archive_path}")
            info.size = len(data)
            archive.addfile(info, io.BytesIO(data))
    return sdist_name
