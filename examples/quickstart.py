"""Quickstart: build DBCopilot over a synthetic multi-database catalog and ask a question.

Run with ``python examples/quickstart.py``.  The script builds a small
Spider-style collection, trains the copilot router on synthesized
(question, schema) pairs, routes a natural-language question to its target
database and tables, and finally generates + executes SQL with the simulated
LLM -- the full two-stage pipeline of the paper's Figure 1.
"""

from __future__ import annotations

from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like
from repro.llm import PromptStrategy, SchemaAgnosticNL2SQL, SimulatedLLM


def main() -> None:
    print("Building a synthetic Spider-style collection ...")
    dataset = build_spider_like()
    print(f"  {dataset.num_databases} databases, {dataset.num_tables} tables, "
          f"{dataset.num_columns} columns")

    print("Training the DBCopilot schema router (this takes a minute on CPU) ...")
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(
            router=RouterConfig(epochs=10, beam_groups=5),
            synthesis=SynthesisConfig(num_samples=2500),
        ),
    )
    report = copilot.build_report
    print(f"  trained {report.num_parameters} parameters on "
          f"{report.synthesis.num_examples} synthetic pairs in {report.build_seconds:.0f}s")

    example = dataset.test_examples[0]
    print("\nQuestion:", example.question)
    print("Gold schema:", example.database, example.tables)

    print("\nSchema routing (top candidates):")
    for route in copilot.route(example.question, max_candidates=3):
        print(f"  <{route.database}, {route.tables}>  score={route.score:.2f}")

    print("\nSQL generation with the routed best schema:")
    llm = SimulatedLLM(catalog=dataset.catalog)
    pipeline = SchemaAgnosticNL2SQL(dataset.catalog, dataset.instances, llm,
                                    router=copilot.predict,
                                    strategy=PromptStrategy.BEST_SCHEMA)
    result = pipeline.answer(example)
    print("  predicted SQL:", result.predicted_sql)
    print("  execution accuracy:", "correct" if result.correct else "incorrect")
    print(f"  simulated LLM cost: ${result.cost:.5f}")


if __name__ == "__main__":
    main()
