"""Multi-process cluster quickstart: checkpoint -> subprocess shards -> serve.

Run with ``python examples/procworker_quickstart.py``.  This is the
process-isolation half of the cluster story: a trained router is partitioned
and saved as a cluster checkpoint, then booted with
``ClusterConfig(worker_backend="subprocess")`` so each shard decodes in its
own ``repro.cluster.procworker`` process, driven over the length-prefixed
wire protocol.  A seeded Zipf workload flows through, one worker is killed
mid-run to show kill-and-respawn, and the cluster shuts down gracefully.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterConfig, ClusterRoutingService, load_cluster, save_cluster
from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like
from repro.serving import LoadGenerator, WorkloadConfig


def main() -> None:
    print("1. Build: training the DBCopilot schema router ...")
    dataset = build_spider_like()
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(
            router=RouterConfig(epochs=10, beam_groups=5),
            synthesis=SynthesisConfig(num_samples=2500),
        ),
    )
    router = copilot.router

    with tempfile.TemporaryDirectory() as scratch:
        print("\n2. Checkpoint: partitioning into 2 shards and saving ...")
        built = ClusterRoutingService.from_router(
            router, ClusterConfig(num_shards=2, strategy="size_balanced"))
        checkpoint = save_cluster(built, Path(scratch) / "cluster-ckpt")
        built.close()
        for artifact in sorted(checkpoint.iterdir()):
            print(f"   {artifact.name}/")

        print("\n3. Spawn: booting the checkpoint on subprocess workers ...")
        config = ClusterConfig(num_shards=2, worker_backend="subprocess")
        with load_cluster(checkpoint, config=config) as cluster:
            workers = [worker for replica_set in cluster.shards
                       for worker in replica_set.workers]
            for worker in workers:
                print(f"   shard {worker.shard_id}: pid {worker.pid}, "
                      f"{len(worker.databases)} databases, "
                      f"heartbeat {worker.ping() * 1000:.1f} ms")

            print("\n4. Serve: a seeded Zipf workload over the wire ...")
            questions = [example.question for example in dataset.test_examples[:30]]
            generator = LoadGenerator(questions, WorkloadConfig(
                num_requests=120, distribution="zipf", skew=1.0, seed=7))
            started = time.perf_counter()
            report = generator.run_batched(cluster.submit_many, batch_size=16)
            print(f"   {report.num_requests} requests, {report.errors} errors, "
                  f"{report.throughput_rps:.0f} routes/sec "
                  f"({time.perf_counter() - started:.2f}s wall)")
            question = questions[0]
            print(f"   Q: {question}")
            for route in cluster.submit(question, max_candidates=3):
                print(f"   -> <{route.database}, {route.tables}>  p={route.score:.3f}")

            print("\n5. Kill-and-respawn: losing a worker is survivable ...")
            victim = workers[0]
            before = cluster.submit(question, max_candidates=1)
            victim.kill()
            print(f"   killed shard {victim.shard_id} (pid was not asked nicely)")
            after = cluster.submit(question, max_candidates=1)
            print(f"   same answer after respawn: {after == before} "
                  f"(new pid {victim.pid}, respawns {victim.respawns})")

            stats = cluster.stats()
            print(f"\n6. Stats: backend={stats['worker_backend']}, "
                  f"dispatcher={stats['dispatcher']}")
            for shard in stats["shards"]:
                transport = shard["workers"][0]["transport"]
                print(f"   shard {shard['shard_id']}: pid {transport['pid']}, "
                      f"requests {transport['requests_sent']}, "
                      f"respawns {transport['respawns']}")
        print("\n7. Closed: shutdown frames drained and every worker exited.")


if __name__ == "__main__":
    main()
