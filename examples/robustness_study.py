"""Robustness to semantic mismatch: Spider-syn / Spider-real style evaluation.

Non-expert users rarely phrase questions with the database's exact vocabulary.
This example perturbs the test questions with synonym substitution and with
column-mention removal and measures how each routing method degrades --
reproducing the story of the paper's Table 4 (DBCopilot is the least affected
because its router is trained on paraphrase-rich synthetic questions).

Run with ``python examples/robustness_study.py``.
"""

from __future__ import annotations

from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like, make_realistic_variant, make_synonym_variant
from repro.retrieval import BM25Retriever, DenseRetriever, build_table_documents, evaluate_routing
from repro.utils.tables import ResultTable


def main() -> None:
    dataset = build_spider_like()
    variants = {
        "regular": dataset.test_examples[:80],
        "synonym (Spider-syn analogue)": make_synonym_variant(dataset).test_examples[:80],
        "realistic (Spider-real analogue)": make_realistic_variant(dataset).test_examples[:80],
    }

    documents = build_table_documents(dataset.catalog)
    bm25 = BM25Retriever()
    bm25.index(documents)
    dense = DenseRetriever()
    dense.index(documents)

    print("Training DBCopilot ...")
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(router=RouterConfig(epochs=10, beam_groups=5),
                               synthesis=SynthesisConfig(num_samples=2500)),
    )

    methods = {"bm25": bm25.route, "dense": dense.route, "dbcopilot": copilot.predict}
    table = ResultTable(title="Database recall@1 under semantic mismatch",
                        columns=["variant"] + list(methods))
    for variant_name, examples in variants.items():
        row = [variant_name]
        for predict in methods.values():
            predictions = [predict(example.question) for example in examples]
            scores = evaluate_routing(predictions, [e.database for e in examples],
                                      [e.tables for e in examples])
            row.append(round(100 * scores.database_recall[1], 2))
        table.add_row(*row)
    print()
    print(table.render())

    original = dataset.test_examples[0].question
    perturbed = make_synonym_variant(dataset).test_examples[0].question
    print("\nExample perturbation:")
    print("  original :", original)
    print("  synonym  :", perturbed)


if __name__ == "__main__":
    main()
