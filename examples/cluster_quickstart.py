"""Cluster quickstart: build -> partition -> serve -> rebalance -> restart.

Run with ``python examples/cluster_quickstart.py``.  This is the scale-out
half of the serving story: one trained router, partitioned into shards that
each decode a slice of the catalog with a small beam budget, scatter-gathered
per question, with confidence-gated escalation, live rebalancing, and a
whole-cluster checkpoint that restarts identically.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.cluster import (
    ClusterConfig,
    ClusterRebalancer,
    ClusterRoutingService,
    load_cluster,
    save_cluster,
)
from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like
from repro.serving import LoadGenerator, WorkloadConfig


def main() -> None:
    print("1. Build: training the DBCopilot schema router ...")
    dataset = build_spider_like()
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(
            router=RouterConfig(epochs=10, beam_groups=5),
            synthesis=SynthesisConfig(num_samples=2500),
        ),
    )
    router = copilot.router
    print(f"   {router.num_parameters()} parameters over "
          f"{dataset.num_databases} databases / {dataset.num_tables} tables")

    print("\n2. Partition + serve: a 4-shard scatter-gather cluster ...")
    config = ClusterConfig(num_shards=4, strategy="size_balanced", replicas=1)
    with ClusterRoutingService.from_router(router, config) as cluster:
        for shard_id, databases in enumerate(cluster.assignment.shards):
            print(f"   shard {shard_id}: {len(databases)} databases "
                  f"({', '.join(databases[:3])}, ...)")
        question = dataset.test_examples[0].question
        print(f"   Q: {question}")
        for route in cluster.submit(question, max_candidates=3):
            print(f"   -> <{route.database}, {route.tables}>  p={route.score:.3f}")

        print("\n3. Throughput: the same Zipf workload, monolithic vs cluster ...")
        questions = [example.question for example in dataset.test_examples[:30]]
        generator = LoadGenerator(questions, WorkloadConfig(
            num_requests=120, distribution="zipf", skew=1.0, seed=7))
        workload = generator.workload()
        started = time.perf_counter()
        router.route_batch(workload)
        mono_rps = len(workload) / (time.perf_counter() - started)
        report = generator.run_batched(cluster.submit_many, batch_size=16)
        stats = cluster.stats()
        print(f"   monolithic: {mono_rps:.0f} routes/sec")
        print(f"   cluster:    {report.throughput_rps:.0f} routes/sec "
              f"({stats['dispatcher']['escalations']} escalations, "
              f"cache hit rate {stats['cache_hit_rate']})")

        print("\n4. Rebalance: moving a database between live shards ...")
        rebalancer = ClusterRebalancer(cluster)
        database = cluster.assignment.shards[0][0]
        rebalancer.move_database(database, 1)
        print(f"   {database}: shard 0 -> shard {cluster.shard_of(database)} "
              f"(catalog version {cluster.catalog_version}; only the touched "
              "shards' caches were invalidated)")
        routes = cluster.submit(question, max_candidates=1)
        print(f"   Q routes unchanged: <{routes[0].database}, {routes[0].tables}>")

        print("\n5. Checkpoint: save the whole cluster, restart it, compare ...")
        with tempfile.TemporaryDirectory() as scratch:
            path = save_cluster(cluster, Path(scratch) / "cluster-ckpt")
            for artifact in sorted(path.iterdir()):
                print(f"   {artifact.name}/")
            with load_cluster(path) as twin:
                same = twin.submit(question) == cluster.submit(question)
                print(f"   restarted cluster routes identically: {same}")


if __name__ == "__main__":
    main()
