"""Serving quickstart: build -> save -> load -> serve -> stats.

Run with ``python examples/serving_quickstart.py``.  This is the deployment
half of the paper's pitch: the schema router is a *compact* model, so it can
be trained once, checkpointed, and then served persistently — with a route
cache and micro-batched decoding — instead of being rebuilt per process.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like
from repro.serving import (
    LoadGenerator,
    RoutingService,
    ServingConfig,
    WorkloadConfig,
    save_router,
)


def main() -> None:
    print("1. Build: training the DBCopilot schema router ...")
    dataset = build_spider_like()
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(
            router=RouterConfig(epochs=10, beam_groups=5),
            synthesis=SynthesisConfig(num_samples=2500),
        ),
    )
    print(f"   {copilot.router.num_parameters()} parameters over "
          f"{dataset.num_databases} databases / {dataset.num_tables} tables")

    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = Path(scratch) / "router-ckpt"
        print(f"\n2. Save: writing the checkpoint to {checkpoint.name}/ ...")
        save_router(copilot.router, checkpoint)
        for artifact in sorted(checkpoint.iterdir()):
            print(f"   {artifact.name}: {artifact.stat().st_size} bytes")

        print("\n3. Load + serve: booting a RoutingService from the checkpoint "
              "(no retraining) ...")
        config = ServingConfig(max_batch_size=8, max_wait_seconds=0.002,
                               cache_size=4096)
        with RoutingService.from_checkpoint(checkpoint, config) as service:
            question = dataset.test_examples[0].question
            print(f"   Q: {question}")
            for route in service.submit(question, max_candidates=3):
                print(f"   -> <{route.database}, {route.tables}>  score={route.score:.2f}")

            print("\n4. Load generation: a seeded repeated-question workload ...")
            questions = [example.question for example in dataset.test_examples[:30]]
            generator = LoadGenerator(questions, WorkloadConfig(
                num_requests=120, unique_fraction=0.15, seed=7, concurrency=4))
            report = generator.run(service.submit)
            print(f"   {report.throughput_rps:.0f} routes/sec, "
                  f"p95 {report.latency['p95_ms']:.1f} ms")

            print("\n5. Stats:")
            print(json.dumps(service.stats(), indent=2))


if __name__ == "__main__":
    main()
