"""Schema routing over a massive enterprise catalog, compared against baselines.

This example mirrors the paper's motivating scenario (Figure 1): a data
consumer asks questions over a data-warehouse-style catalog without knowing
which database or tables hold the answer.  It builds the Fiben-style single
enterprise database plus the Spider-style collection, routes questions with
DBCopilot and with BM25 / dense / CRUSH retrieval, and reports recall.

Run with ``python examples/massive_database_routing.py``.
"""

from __future__ import annotations

from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like
from repro.retrieval import (
    BM25Retriever,
    CrushRetriever,
    DenseRetriever,
    build_table_documents,
    evaluate_routing,
)
from repro.utils.tables import ResultTable


def main() -> None:
    dataset = build_spider_like()
    documents = build_table_documents(dataset.catalog)
    examples = dataset.test_examples[:100]

    print("Indexing retrieval baselines ...")
    methods = {}
    for name, retriever in (("bm25", BM25Retriever()), ("dense", DenseRetriever()),
                            ("crush_bm25", CrushRetriever(BM25Retriever()))):
        retriever.index(documents)
        methods[name] = retriever.route

    print("Training DBCopilot ...")
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(router=RouterConfig(epochs=10, beam_groups=5),
                               synthesis=SynthesisConfig(num_samples=2500)),
    )
    methods["dbcopilot"] = copilot.predict

    table = ResultTable(
        title="Schema routing over the massive catalog",
        columns=["method", "db_R@1", "db_R@5", "table_R@5", "table_mAP"],
    )
    for name, predict in methods.items():
        predictions = [predict(example.question) for example in examples]
        scores = evaluate_routing(predictions, [e.database for e in examples],
                                  [e.tables for e in examples]).as_row()
        table.add_row(name, scores["db_recall@1"], scores["db_recall@5"],
                      scores["table_recall@5"], scores["table_map"])
    print()
    print(table.render())

    question = examples[0].question
    print("\nExample question:", question)
    print("DBCopilot best schema:", copilot.best_schema(question))


if __name__ == "__main__":
    main()
