"""End-to-end schema-agnostic NL2SQL with different prompt strategies.

Reproduces the flavour of the paper's Table 6 on a small scale: route with
DBCopilot, then generate SQL with best-schema, multiple-schema, CoT, and
human-in-the-loop prompting, reporting execution accuracy and simulated LLM
cost for each strategy.

Run with ``python examples/end_to_end_nl2sql.py``.
"""

from __future__ import annotations

from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.datasets import build_spider_like
from repro.llm import PromptStrategy, SchemaAgnosticNL2SQL, SimulatedLLM, evaluate_nl2sql
from repro.utils.tables import ResultTable


def main() -> None:
    dataset = build_spider_like()
    examples = dataset.test_examples[:80]

    print("Training DBCopilot ...")
    copilot = DBCopilot.build(
        dataset.catalog, dataset.instances,
        config=DBCopilotConfig(router=RouterConfig(epochs=10, beam_groups=5),
                               synthesis=SynthesisConfig(num_samples=2500)),
    )

    table = ResultTable(title="Prompt strategies for LLM-based SQL generation",
                        columns=["strategy", "EX", "cost_usd"])
    for strategy in (PromptStrategy.BEST_SCHEMA, PromptStrategy.MULTIPLE_SCHEMA,
                     PromptStrategy.MULTIPLE_SCHEMA_COT, PromptStrategy.HUMAN_IN_THE_LOOP):
        llm = SimulatedLLM(catalog=dataset.catalog)
        pipeline = SchemaAgnosticNL2SQL(dataset.catalog, dataset.instances, llm,
                                        router=copilot.predict, strategy=strategy)
        evaluation = evaluate_nl2sql(pipeline, examples)
        row = evaluation.as_row()
        table.add_row(strategy.value, row["EX"], f"{row['cost']:.4f}")
    print()
    print(table.render())

    example = examples[0]
    llm = SimulatedLLM(catalog=dataset.catalog)
    pipeline = SchemaAgnosticNL2SQL(dataset.catalog, dataset.instances, llm,
                                    router=copilot.predict)
    result = pipeline.answer(example)
    print("\nSample question :", example.question)
    print("Routed database :", result.predicted_database)
    print("Predicted SQL   :", result.predicted_sql)
    print("Gold SQL        :", example.sql)
    print("Correct         :", result.correct)


if __name__ == "__main__":
    main()
