"""Table 5 reproduction: routing efficiency and resource consumption."""

from __future__ import annotations

from repro.experiments.efficiency import efficiency_table


def test_table5_efficiency(benchmark, spider_context):
    table = benchmark.pedantic(lambda: efficiency_table(spider_context), rounds=1, iterations=1)
    print()
    print(table.render())
    records = {record["method"]: record for record in table.to_records()}
    # BM25 answers queries faster than the generative router, as in the paper.
    assert float(records["bm25"]["QPS"]) > float(records["dbcopilot"]["QPS"])
