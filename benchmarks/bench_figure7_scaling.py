"""Figure 7 reproduction: mAP vs database size and recall@k curves."""

from __future__ import annotations

from repro.experiments.routing import map_by_database_size, recall_at_k_curve


def test_figure7a_map_by_database_size(benchmark, spider_context):
    table = benchmark.pedantic(lambda: map_by_database_size(spider_context),
                               rounds=1, iterations=1)
    print()
    print(table.render())
    assert any(record["method"] == "dbcopilot" for record in table.to_records())


def test_figure7b_recall_at_k(benchmark, spider_context):
    table = benchmark.pedantic(lambda: recall_at_k_curve(spider_context),
                               rounds=1, iterations=1)
    print()
    print(table.render())
    records = {record["method"]: record for record in table.to_records()}
    # Recall@k is monotone in k for every method.
    for record in records.values():
        values = [float(record[key]) for key in record if key.startswith("R@")]
        assert values == sorted(values)
