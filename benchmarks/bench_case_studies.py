"""Figures 8 & 9 reproduction: qualitative routing case studies."""

from __future__ import annotations

from repro.experiments.case_study import case_study_table


def test_case_studies(benchmark, spider_context):
    table = benchmark.pedantic(lambda: case_study_table(spider_context, num_cases=3),
                               rounds=1, iterations=1)
    print()
    print(table.render())
    assert table.rows
