"""Figure 10 reproduction: routing recall vs synthetic-data volume."""

from __future__ import annotations

from repro.experiments.data_scaling import data_scaling_table


def test_figure10_synthetic_data_scaling(benchmark, spider_context):
    table = benchmark.pedantic(
        lambda: data_scaling_table(spider_context, sample_sizes=(500, 1000, 2000)),
        rounds=1, iterations=1,
    )
    print()
    print(table.render())
    rows = table.to_records()
    # Recall grows (or at least does not collapse) as more data is synthesized.
    assert float(rows[-1]["db_R@1"]) >= float(rows[0]["db_R@1"]) - 5.0
