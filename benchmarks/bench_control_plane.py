"""Control-plane benchmarks: degrade under overload, rebalance without flap.

``test_overload_sheds_not_collapses`` is the admission-control gate.  It
first measures the service's closed-loop saturation throughput (cache off,
so every request is a real decode), then offers an open-loop 2x-saturation
workload twice: once against a bare service and once behind an
:class:`~repro.control.admission.AdmissionController` whose token bucket
caps admitted decodes at half of saturation.  Latency is *schedule-relative*
(completion minus the deterministic release time), so the bare service
cannot hide its backlog between requests: it collapses into unbounded lag,
while the admitted fraction behind admission control stays under the
declared SLO and the rest is shed with a fast, typed rejection.  Prints a
``CONTROL_SUMMARY`` JSON line for CI.

``test_hot_shard_split_without_flapping`` is the rebalancer-feedback gate:
skewed traffic makes one shard own the routed hot set, the controller must
split it (move a cold database off it) within a few ticks, and hysteresis
plus per-database cooldown must keep consecutive actions at least one full
hysteresis window apart — no flapping.  Prints ``REBALANCE_SUMMARY``.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter

from repro.cluster import ClusterConfig, ClusterRebalancer, ClusterRoutingService
from repro.control import (
    AdmissionController,
    AdmissionPolicy,
    Controller,
    ControllerConfig,
)
from repro.serving import RoutingService, ScenarioDriver, ServingConfig, named_scenario
from repro.utils.tables import ResultTable

#: Open-loop request budget; ``REPRO_BENCH_REQUESTS`` shrinks it for smoke.
NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "150"))
#: The declared latency SLO admitted traffic must stay under at 2x load.
SLO_P99_MS = 500.0


class _SteppedClock:
    """A manually-advanced clock for deterministic controller hysteresis."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_overload_sheds_not_collapses(spider_context):
    router = spider_context.copilot.router
    questions = [example.question
                 for example in spider_context.test_examples()[:40]]
    config = ServingConfig(enable_cache=False, enable_batching=False,
                           enable_tracing=False)

    # Closed-loop saturation: how fast can uncached decodes actually go?
    with RoutingService(router, config=config) as probe:
        probe_wave = (questions * 3)[:max(30, min(NUM_REQUESTS, 60))]
        started = time.perf_counter()
        for question in probe_wave:
            probe.submit(question)
        saturation_qps = len(probe_wave) / max(time.perf_counter() - started,
                                               1e-9)

    offered_qps = 2.0 * saturation_qps
    scenario = named_scenario("steady", num_requests=NUM_REQUESTS,
                              qps=offered_qps, seed=23)
    driver = ScenarioDriver(questions, scenario)

    # Bare service: every request admitted, the backlog is the latency.
    with RoutingService(router, config=config) as bare:
        baseline = driver.run(bare.submit)

    # Admission-controlled twin: the bucket caps admitted decodes at half of
    # saturation, so shedding is guaranteed arithmetically (offered 4x the
    # ceiling) and admitted requests never queue behind a backlog.
    admission = AdmissionController(AdmissionPolicy(
        max_qps=0.5 * saturation_qps, burst_requests=8.0))
    with RoutingService(router, config=config,
                        admission=admission) as controlled:
        shedding = driver.run(controlled.submit)
        stats = controlled.stats()
        health = controlled.health()

    table = ResultTable(
        title=f"Overload at 2x saturation ({offered_qps:.0f} qps offered)",
        columns=["mode", "admitted", "shed", "p99_lag_ms", "max_lag_s"],
    )
    table.add_row("bare", baseline.admitted, baseline.shed,
                  baseline.latency["p99_ms"],
                  round(baseline.max_lag_seconds, 3))
    table.add_row("admission", shedding.admitted, shedding.shed,
                  shedding.latency["p99_ms"],
                  round(shedding.max_lag_seconds, 3))
    print()
    print(table.render())

    summary = {
        "saturation_qps": round(saturation_qps, 1),
        "offered_qps": round(offered_qps, 1),
        "num_requests": NUM_REQUESTS,
        "slo_p99_ms": SLO_P99_MS,
        "baseline_p99_lag_ms": baseline.latency["p99_ms"],
        "baseline_max_lag_seconds": round(baseline.max_lag_seconds, 4),
        "admitted_p99_lag_ms": shedding.latency["p99_ms"],
        "admitted_max_lag_seconds": round(shedding.max_lag_seconds, 4),
        "shed_fraction": round(shedding.shed_fraction, 4),
        "rejected_by_reason": stats["admission"]["rejected_by_reason"],
        "errors": shedding.errors,
        "health_status": health.status,
    }
    print("CONTROL_SUMMARY " + json.dumps(summary, sort_keys=True))

    # Shedding is loss, never failure: every non-shed request succeeded.
    assert baseline.errors == 0 and shedding.errors == 0, summary
    # The bucket at half saturation under 2x offered load must shed hard.
    assert shedding.shed_fraction >= 0.3, summary
    assert stats["admission"]["rejected_by_reason"]["rate_limit"] > 0, summary
    # The gate: admitted latency stays bounded by the declared SLO...
    assert shedding.latency["p99_ms"] <= SLO_P99_MS, summary
    # ...while the bare service degrades into (strictly worse) backlog lag.
    assert baseline.latency["p99_ms"] > shedding.latency["p99_ms"], summary
    # Rejections are surfaced, not swallowed.
    assert stats["counters"]["admission_rejected"] == shedding.shed, summary


def test_hot_shard_split_without_flapping(spider_context):
    router = spider_context.copilot.router
    questions = [example.question
                 for example in spider_context.test_examples()[:60]]
    cluster = ClusterRoutingService.from_router(
        router, ClusterConfig(num_shards=3, enable_tracing=False))
    clock = _SteppedClock()
    hysteresis = 5.0
    controller = Controller(
        cluster, rebalancer=ClusterRebalancer(cluster),
        config=ControllerConfig(hysteresis_seconds=hysteresis,
                                database_cooldown_seconds=1e9,
                                min_window_qps=0.5,
                                adaptive_escalation=False),
        clock=clock)
    try:
        # Probe round: find which database wins the most questions, then
        # build a hot workload of exactly the questions it answers.
        probed = cluster.submit_many(questions)
        top1 = [routes[0].database for routes in probed if routes]
        hot_database = Counter(top1).most_common(1)[0][0]
        hot_shard = cluster.shard_of(hot_database)
        hot_questions = [question for question, routes in zip(questions, probed)
                         if routes and routes[0].database == hot_database]
        hot_wave = (hot_questions * 40)[:40]
        shard_sizes_before = [len(shard) for shard in
                              cluster.stats()["assignment"]]
        assert shard_sizes_before[hot_shard] >= 2, \
            "the hot shard needs a cold database to shed"

        rounds = 8
        for _ in range(rounds):
            cluster.submit_many(hot_wave)
            controller.tick()
            clock.advance(2.0)
        actions = controller.actions()
        stats = cluster.stats()
        controller_stats = controller.stats()
        assert cluster.submit(hot_questions[0])  # still serving after moves
    finally:
        cluster.close()

    ok_actions = [action for action in actions if action["status"] == "ok"]
    splits = [action for action in ok_actions if action["kind"] == "split"]
    gaps = [later["at"] - earlier["at"]
            for earlier, later in zip(ok_actions, ok_actions[1:])]

    table = ResultTable(
        title="Rebalancer feedback under a hot shard",
        columns=["kind", "database", "from", "to", "share"],
    )
    for action in ok_actions:
        table.add_row(action["kind"], action["database"],
                      action["from_shard"], action["to_shard"],
                      action["share"])
    print()
    print(table.render())

    summary = {
        "hot_database": hot_database,
        "hot_shard": hot_shard,
        "rounds": rounds,
        "hysteresis_seconds": hysteresis,
        "actions": len(ok_actions),
        "splits": len(splits),
        "merges": controller_stats["merges"],
        "min_action_gap_seconds": round(min(gaps), 3) if gaps else None,
        "moved_databases": [action["database"] for action in ok_actions],
        "assignment_after": stats["assignment"],
        "routed_total": stats["routing_load"]["total"],
        "tick_errors": controller_stats["tick_errors"],
    }
    print("REBALANCE_SUMMARY " + json.dumps(summary, sort_keys=True))

    # The controller saw the hot shard and split it (at least once)...
    assert splits, summary
    assert splits[0]["from_shard"] == hot_shard, summary
    # ...every tick survived...
    assert controller_stats["tick_errors"] == 0, summary
    # ...and it never flapped: at most one action per hysteresis window,
    # and (under the cooldown) no database ever moved twice.
    assert all(gap >= hysteresis for gap in gaps), summary
    moved = [action["database"] for action in ok_actions]
    assert len(moved) == len(set(moved)), summary
    # The hot shard really shrank: its cold databases moved off it.
    assert len(stats["assignment"][hot_shard]) < \
        shard_sizes_before[hot_shard], summary
