"""Shared fixtures for the benchmark harness.

The experiment contexts (synthetic collections, baseline indexes, trained
DBCopilot) are cached at module level inside :mod:`repro.experiments.context`,
so running the full benchmark session builds each collection exactly once.
"""

from __future__ import annotations

import pytest

from repro.experiments import default_config, get_context


@pytest.fixture(scope="session")
def experiment_config():
    return default_config()


@pytest.fixture(scope="session")
def spider_context(experiment_config):
    return get_context("spider_like", experiment_config)


@pytest.fixture(scope="session")
def bird_context(experiment_config):
    return get_context("bird_like", experiment_config)


@pytest.fixture(scope="session")
def fiben_context(experiment_config):
    return get_context("fiben_like", experiment_config)
