"""Shared fixtures for the benchmark harness.

The experiment contexts (synthetic collections, baseline indexes, trained
DBCopilot) are cached at module level inside :mod:`repro.experiments.context`,
so running the full benchmark session builds each collection exactly once.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, ClusterRoutingService, load_cluster, save_cluster
from repro.experiments import default_config, get_context
from repro.serving import RoutingService, ServingConfig, save_router


def pytest_addoption(parser):
    parser.addoption(
        "--backend", action="store", default="inproc",
        choices=("inproc", "subprocess"),
        help="cluster worker backend for bench_cluster_scaling: 'inproc' "
             "(threads in this interpreter) or 'subprocess' (one "
             "repro.cluster.procworker process per shard over the wire "
             "protocol)")
    parser.addoption(
        "--wave-decode", action="store_true", default=False,
        help="run bench_cluster_scaling's throughput cluster with dense wave "
             "decode and shard-sliced vocabularies (inproc backend only); "
             "gates the 1.5x speedup over the vectorized monolith")
    parser.addoption(
        "--pipelined", action="store_true", default=False,
        help="run bench_cluster_scaling's pipelined-transport comparison "
             "(subprocess backend only): multiplexed protocol-3 workers vs "
             "serial protocol-2 twins under concurrent waves with the "
             "escalation cascade enabled; gates the 1.3x routes/sec win")
    parser.addoption(
        "--decode-backends", action="store", default="loop,vectorized,fast",
        help="comma-separated decode backends bench_decode_throughput sweeps "
             "('loop' must be included: it is the reference the others are "
             "compared against)")


@pytest.fixture(scope="session")
def cluster_backend(request) -> str:
    return request.config.getoption("--backend")


@pytest.fixture(scope="session")
def wave_decode(request) -> bool:
    return request.config.getoption("--wave-decode")


@pytest.fixture(scope="session")
def pipelined(request) -> bool:
    return request.config.getoption("--pipelined")


@pytest.fixture(scope="session")
def decode_backends(request) -> list[str]:
    backends = [name.strip()
                for name in request.config.getoption("--decode-backends").split(",")
                if name.strip()]
    if "loop" not in backends:
        backends.insert(0, "loop")
    return backends


@pytest.fixture(scope="session")
def experiment_config():
    return default_config()


@pytest.fixture(scope="session")
def spider_context(experiment_config):
    return get_context("spider_like", experiment_config)


@pytest.fixture(scope="session")
def bird_context(experiment_config):
    return get_context("bird_like", experiment_config)


@pytest.fixture(scope="session")
def fiben_context(experiment_config):
    return get_context("fiben_like", experiment_config)


@pytest.fixture(scope="session")
def spider_serving(spider_context, tmp_path_factory):
    """A routing service booted from a checkpoint of the spider-like copilot.

    Going through the on-disk checkpoint (rather than wrapping the in-memory
    router) exercises the full deploy path that ``bench_serving_throughput``
    measures: save -> load -> serve.
    """
    checkpoint = save_router(spider_context.copilot.router,
                             tmp_path_factory.mktemp("serving") / "router-ckpt")
    service = RoutingService.from_checkpoint(checkpoint, ServingConfig(
        max_batch_size=8, max_wait_seconds=0.002, cache_size=4096))
    yield service
    service.close()


@pytest.fixture(scope="session")
def spider_cluster(spider_context, tmp_path_factory):
    """A 4-shard cluster booted from a whole-cluster checkpoint.

    Mirrors ``spider_serving``: the cluster is saved with ``save_cluster`` and
    booted with ``load_cluster`` so ``bench_cluster_scaling`` measures the full
    deploy path (partition -> project -> save -> load -> serve).
    """
    built = ClusterRoutingService.from_router(
        spider_context.copilot.router,
        ClusterConfig(num_shards=4, strategy="size_balanced", cache_size=4096),
    )
    checkpoint = save_cluster(built,
                              tmp_path_factory.mktemp("cluster") / "cluster-ckpt")
    built.close()
    service = load_cluster(checkpoint)
    yield service
    service.close()
