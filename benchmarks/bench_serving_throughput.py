"""Serving throughput: batched + cached service vs naive per-question routing.

The workload repeats questions (Zipf-skewed, as real user traffic does), so
the route cache absorbs the head of the distribution and the micro-batcher
amortizes encoding across concurrent misses.  The benchmark prints the usual
result table plus a one-line JSON summary (``SERVING_SUMMARY ...``) with
routes/sec, cache hit rate, and p95 latency so CI can scrape it.
"""

from __future__ import annotations

import json
import os
import time

from repro.serving import LoadGenerator, WorkloadConfig
from repro.utils.tables import ResultTable

#: Shared workload shape: many repeats over a small distinct-question head.
#: ``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke lanes.
WORKLOAD = WorkloadConfig(
    num_requests=int(os.environ.get("REPRO_BENCH_REQUESTS", "150")),
    unique_fraction=0.1, skew=1.0, seed=17, concurrency=4)


def test_serving_throughput(benchmark, spider_context, spider_serving):
    router = spider_context.copilot.router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)
    workload = generator.workload()

    # Naive baseline: one synchronous route() call per request, no reuse.
    started = time.perf_counter()
    for question in workload:
        router.route(question)
    naive_elapsed = max(time.perf_counter() - started, 1e-9)
    naive_rps = len(workload) / naive_elapsed

    # The service: checkpoint-loaded router behind cache + micro-batcher.
    report = benchmark.pedantic(lambda: generator.run(spider_serving.submit),
                                rounds=1, iterations=1)
    stats = spider_serving.stats()

    table = ResultTable(
        title="Serving throughput: micro-batched + cached vs naive routing",
        columns=["mode", "routes_per_sec", "p95_ms", "cache_hit_rate"],
    )
    table.add_row("naive_route", round(naive_rps, 1),
                  round(naive_elapsed / len(workload) * 1000.0, 3), "-")
    table.add_row("serving", round(report.throughput_rps, 1),
                  report.latency["p95_ms"], stats["cache_hit_rate"])
    print()
    print(table.render())

    summary = {
        "workload_requests": report.num_requests,
        "naive_routes_per_sec": round(naive_rps, 1),
        "serving_routes_per_sec": round(report.throughput_rps, 1),
        "speedup": round(report.throughput_rps / naive_rps, 2),
        "cache_hit_rate": stats["cache_hit_rate"],
        "p95_latency_ms": report.latency["p95_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "errors": report.errors,
    }
    print("SERVING_SUMMARY " + json.dumps(summary, sort_keys=True))

    assert report.errors == 0
    assert stats["cache_hit_rate"] > 0.0
    # The acceptance bar: batching + caching must at least double throughput
    # on a repeated-question workload.
    assert report.throughput_rps >= 2.0 * naive_rps, summary
