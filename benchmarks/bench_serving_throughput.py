"""Serving throughput: batched + cached service vs naive per-question routing.

The workload repeats questions (Zipf-skewed, as real user traffic does), so
the route cache absorbs the head of the distribution and the micro-batcher
amortizes encoding across concurrent misses.  The benchmark prints the usual
result table plus a one-line JSON summary (``SERVING_SUMMARY ...``) with
routes/sec, cache hit rate, and p95 latency so CI can scrape it.

``test_tracing_overhead`` gates the observability layer: request tracing on
vs off on the same workload, interleaved rounds, with each side's *best*
round compared (minimum-time estimator) and tracing-on required to stay
within 5%% of tracing-off.  It prints ``OBS_SUMMARY ...`` (stage-breakdown
percentiles, window QPS, overhead) for CI to scrape.

``test_monitor_overhead`` gates the active-monitoring layer the same way: a
background :class:`repro.obs.Monitor` ticking far faster than production
would must cost at most 2%% against an unmonitored twin, and the steady-state
verdict must be ``ok`` with zero alerts.  It prints ``HEALTH_SUMMARY ...``.
"""

from __future__ import annotations

import json
import os
import time

from repro.obs import Monitor
from repro.serving import LoadGenerator, RoutingService, ServingConfig, WorkloadConfig
from repro.utils.tables import ResultTable

#: Shared workload shape: many repeats over a small distinct-question head.
#: ``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke lanes.
WORKLOAD = WorkloadConfig(
    num_requests=int(os.environ.get("REPRO_BENCH_REQUESTS", "150")),
    unique_fraction=0.1, skew=1.0, seed=17, concurrency=4)


def test_serving_throughput(benchmark, spider_context, spider_serving):
    router = spider_context.copilot.router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)
    workload = generator.workload()

    # Naive baseline: one synchronous route() call per request, no reuse.
    started = time.perf_counter()
    for question in workload:
        router.route(question)
    naive_elapsed = max(time.perf_counter() - started, 1e-9)
    naive_rps = len(workload) / naive_elapsed

    # The service: checkpoint-loaded router behind cache + micro-batcher.
    report = benchmark.pedantic(lambda: generator.run(spider_serving.submit),
                                rounds=1, iterations=1)
    stats = spider_serving.stats()

    table = ResultTable(
        title="Serving throughput: micro-batched + cached vs naive routing",
        columns=["mode", "routes_per_sec", "p95_ms", "cache_hit_rate"],
    )
    table.add_row("naive_route", round(naive_rps, 1),
                  round(naive_elapsed / len(workload) * 1000.0, 3), "-")
    table.add_row("serving", round(report.throughput_rps, 1),
                  report.latency["p95_ms"], stats["cache_hit_rate"])
    print()
    print(table.render())

    summary = {
        "workload_requests": report.num_requests,
        "naive_routes_per_sec": round(naive_rps, 1),
        "serving_routes_per_sec": round(report.throughput_rps, 1),
        "speedup": round(report.throughput_rps / naive_rps, 2),
        "cache_hit_rate": stats["cache_hit_rate"],
        "p95_latency_ms": report.latency["p95_ms"],
        "mean_batch_size": stats["mean_batch_size"],
        "errors": report.errors,
    }
    print("SERVING_SUMMARY " + json.dumps(summary, sort_keys=True))

    assert report.errors == 0
    assert stats["cache_hit_rate"] > 0.0
    # The acceptance bar: batching + caching must at least double throughput
    # on a repeated-question workload.
    assert report.throughput_rps >= 2.0 * naive_rps, summary


def test_tracing_overhead(spider_context):
    """Tracing must be effectively free: the same service config with tracing
    on serves the same workload within 5% of tracing off.

    The two services share one trained router and run interleaved rounds
    (off, on, off, on, ...) so machine-load drift hits both sides equally;
    the gate compares each side's best round (the minimum-time estimator:
    on a shared smoke core the median still carries whatever background
    load landed on most rounds, while the best round of an interleaved
    sweep is the least-disturbed measurement either side achieved).
    """
    router = spider_context.copilot.router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)

    def service(enable_tracing: bool) -> RoutingService:
        return RoutingService(router, config=ServingConfig(
            max_batch_size=8, max_wait_seconds=0.002, cache_size=4096,
            enable_tracing=enable_tracing))

    traced, untraced = service(True), service(False)
    try:
        # one unmeasured round each fills the caches: every measured round
        # then serves the identical steady state
        generator.run(untraced.submit)
        generator.run(traced.submit)
        on_rps, off_rps = [], []
        for _ in range(8):
            off_rps.append(generator.run(untraced.submit).throughput_rps)
            on_rps.append(generator.run(traced.submit).throughput_rps)
        stats = traced.stats()
    finally:
        traced.close()
        untraced.close()

    on, off = max(on_rps), max(off_rps)
    overhead = 1.0 - on / off

    table = ResultTable(
        title="Tracing overhead: identical workload, tracing on vs off",
        columns=["mode", "best_routes_per_sec", "rounds"],
    )
    table.add_row("tracing_off", round(off, 1), len(off_rps))
    table.add_row("tracing_on", round(on, 1), len(on_rps))
    print()
    print(table.render())

    summary = {
        "untraced_routes_per_sec": round(off, 1),
        "traced_routes_per_sec": round(on, 1),
        "overhead_fraction": round(overhead, 4),
        "qps_window": stats["qps_window"],
        "stages": {
            name: {"count": entry["count"], "p50_ms": entry["p50_ms"],
                   "p95_ms": entry["p95_ms"]}
            for name, entry in stats["stages"].items()
        },
        "traces_completed": stats["traces"]["completed"],
        "traces_retained": stats["traces"]["retained"],
    }
    print("OBS_SUMMARY " + json.dumps(summary, sort_keys=True))

    # every cache miss opened and finished a trace (hits stay trace-free by
    # design -- that IS the overhead contract), none leaked...
    counters = stats["counters"]
    assert stats["traces"]["completed"] \
        == counters["requests"] - counters["cache_hits"] > 0
    assert stats["traces"]["open_traces"] == 0
    # ...the stage breakdown actually populated...
    assert {"request", "queue_wait", "encode", "decode", "parse"} \
        <= set(stats["stages"])
    # ...and the whole apparatus cost at most 5% throughput.
    assert on >= 0.95 * off, summary


def test_monitor_overhead(spider_context):
    """Active monitoring must be near-free: a background monitor ticking at
    0.2s (25x production cadence) costs at most 2% throughput on the
    tracing-off serving round, and a healthy steady state reports ``ok``
    with zero alerts.

    Same interleaved best-of-round design as ``test_tracing_overhead``: one
    monitored and one bare service share the router and alternate rounds.
    """
    router = spider_context.copilot.router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)

    def service() -> RoutingService:
        return RoutingService(router, config=ServingConfig(
            max_batch_size=8, max_wait_seconds=0.002, cache_size=4096,
            enable_tracing=False))

    monitored, bare = service(), service()
    monitor = Monitor(monitored, interval_seconds=0.2).start()
    try:
        generator.run(bare.submit)  # unmeasured cache-fill rounds
        generator.run(monitored.submit)
        on_rps, off_rps = [], []
        for _ in range(8):
            off_rps.append(generator.run(bare.submit).throughput_rps)
            on_rps.append(generator.run(monitored.submit).throughput_rps)
        health = monitor.check_now()
        latest = monitor.tick()  # one final deterministic evaluation
        monitor_summary = monitor.summary()
    finally:
        monitor.close()
        monitored.close()
        bare.close()

    on, off = max(on_rps), max(off_rps)
    overhead = 1.0 - on / off

    table = ResultTable(
        title="Monitor overhead: identical workload, monitor on vs off",
        columns=["mode", "best_routes_per_sec", "rounds"],
    )
    table.add_row("monitor_off", round(off, 1), len(off_rps))
    table.add_row("monitor_on", round(on, 1), len(on_rps))
    print()
    print(table.render())

    summary = {
        "health_status": health.status,
        "health_reasons": health.reasons,
        "alerts": monitor_summary["alerts"],
        "monitor_ticks": monitor_summary["ticks"],
        "tick_errors": monitor_summary["tick_errors"],
        "slo": [{"name": status["name"], "firing": status["firing"],
                 "fast_burn": status["fast_burn"]}
                for status in latest["slo"]],
        "unmonitored_routes_per_sec": round(off, 1),
        "monitored_routes_per_sec": round(on, 1),
        "overhead_fraction": round(overhead, 4),
    }
    print("HEALTH_SUMMARY " + json.dumps(summary, sort_keys=True))

    # steady state is healthy and quiet: verdict ok, nothing fired, every
    # tick succeeded...
    assert health.status == "ok", summary
    assert monitor_summary["alerts"]["active"] == 0, summary
    assert monitor_summary["alerts"]["fired"] == 0, summary
    assert monitor_summary["tick_errors"] == 0, summary
    assert monitor_summary["ticks"] > 1
    assert not any(status["firing"] for status in latest["slo"])
    # ...and watching the service cost at most 2% throughput.
    assert on >= 0.98 * off, summary
