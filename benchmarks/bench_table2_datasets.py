"""Table 2 reproduction: statistics of the adapted dataset collections."""

from __future__ import annotations

from repro.datasets import (
    build_bird_like,
    build_fiben_like,
    build_spider_like,
    dataset_statistics,
    make_realistic_variant,
    make_synonym_variant,
)
from repro.utils.tables import ResultTable


def _build_statistics() -> ResultTable:
    table = ResultTable(
        title="Table 2: statistics of the (synthetic analogue) datasets",
        columns=["dataset", "train", "test", "# DBs", "# tables", "# columns"],
    )
    spider = build_spider_like()
    for dataset in (spider, build_bird_like(), build_fiben_like(),
                    make_synonym_variant(spider), make_realistic_variant(spider)):
        stats = dataset_statistics(dataset)
        table.add_row(stats["dataset"], stats["train"], stats["test"],
                      stats["databases"], stats["tables"], stats["columns"])
    return table


def test_table2_dataset_statistics(benchmark):
    table = benchmark.pedantic(_build_statistics, rounds=1, iterations=1)
    print()
    print(table.render())
    assert len(table.rows) == 5
