"""Table 4 reproduction: schema routing on the robustness variants."""

from __future__ import annotations

from repro.experiments.routing import robustness_table


def test_table4_robustness_routing(benchmark, spider_context):
    table = benchmark.pedantic(lambda: robustness_table(spider_context), rounds=1, iterations=1)
    print()
    print(table.render())
    records = {record["method"]: record for record in table.to_records()}
    # Semantic mismatch hurts BM25 far more than the copilot (paper Finding 2).
    assert float(records["dbcopilot"]["syn_db_R@1"]) > float(records["bm25"]["syn_db_R@1"])
    assert float(records["dbcopilot"]["real_db_R@1"]) > float(records["bm25"]["real_db_R@1"])
