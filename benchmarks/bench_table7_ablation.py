"""Table 7 reproduction: ablation study of the router's components."""

from __future__ import annotations

from repro.experiments.ablation import ablation_table


def test_table7_ablations(benchmark, spider_context):
    table = benchmark.pedantic(lambda: ablation_table(spider_context), rounds=1, iterations=1)
    print()
    print(table.render())
    records = {record["variant"]: record for record in table.to_records()}
    full = float(records["DBCopilot (full)"]["db_R@1"])
    original_only = float(records["w/ OD (original data only)"]["db_R@1"])
    # Training on original data only collapses: generative retrieval cannot
    # generalise to unseen schemata (paper Table 7).
    assert original_only < full
