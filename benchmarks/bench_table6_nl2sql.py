"""Table 6 reproduction: schema-agnostic NL2SQL (EX and cost)."""

from __future__ import annotations

from repro.experiments.nl2sql import nl2sql_table


def test_table6_nl2sql_regular(benchmark, spider_context):
    table = benchmark.pedantic(lambda: nl2sql_table(spider_context), rounds=1, iterations=1)
    print()
    print(table.render())
    records = table.to_records()
    oracle_gold = next(r for r in records if r["method"] == "Gold T. & C.")
    five_db = next(r for r in records if r["method"] == "5 DB w. Gold")
    # Extraneous schema lowers EX and raises cost (paper Finding 4).
    assert float(oracle_gold["EX"]) >= float(five_db["EX"])
    assert float(five_db["cost_usd"]) > float(oracle_gold["cost_usd"])
    best_rows = [r for r in records if r["section"] == "Best Schema Prompting"]
    dbc = next(r for r in best_rows if r["method"] == "dbcopilot")
    others = [float(r["EX"]) for r in best_rows if r["method"] != "dbcopilot"]
    # DBCopilot's routing yields the best end-to-end EX among routing methods.
    assert float(dbc["EX"]) >= max(others) - 1e-9


def test_table6_nl2sql_synonym_variant(benchmark, spider_context):
    examples = spider_context.test_examples("syn")[:60]
    table = benchmark.pedantic(
        lambda: nl2sql_table(spider_context, examples=examples, include_oracle=False),
        rounds=1, iterations=1,
    )
    print()
    print(table.render())
    assert table.rows
