"""Decode throughput: the vectorized batched beam engine vs the loop backend.

Routes the same seeded workload through the same trained router twice -- once
with ``decode_backend="vectorized"`` (all active beams of a micro-batch
advance through one stacked kernel call per step) and once with
``decode_backend="loop"`` (the per-beam reference path) -- in micro-batches of
``DECODE_BATCH`` questions.  Besides the result table it prints a one-line
``DECODE_SUMMARY`` JSON (questions/sec per backend, speedup, agreement) for
the CI bench-smoke lane to scrape, and asserts both the >=2x speedup bar and
bit-identical routes across backends.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.router import SchemaRouter
from repro.utils.tables import ResultTable

#: Micro-batch size under test (the acceptance bar is pinned at batch 8).
DECODE_BATCH = 8
#: ``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke lanes.
NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "160"))


def _route_key(routes) -> list[tuple]:
    return [(route.database, route.tables, route.score.hex()) for route in routes]


def _clone_with_backend(router: SchemaRouter, backend: str) -> SchemaRouter:
    clone = SchemaRouter(graph=router.graph,
                        config=router.config.ablated(decode_backend=backend))
    clone.restore(router.model, router.source_vocabulary, router.target_vocabulary,
                  router.training_losses)
    return clone


def _drive(router: SchemaRouter, batches: list[list[str]]) -> tuple[float, list]:
    routed = []
    started = time.perf_counter()
    for batch in batches:
        routed.extend(router.route_batch(batch))
    return max(time.perf_counter() - started, 1e-9), routed


def test_decode_throughput(benchmark, spider_context):
    questions = [example.question for example in spider_context.test_examples()[:40]]
    workload = [questions[index % len(questions)] for index in range(NUM_REQUESTS)]
    batches = [workload[start:start + DECODE_BATCH]
               for start in range(0, len(workload), DECODE_BATCH)]

    vectorized = _clone_with_backend(spider_context.copilot.router, "vectorized")
    loop = _clone_with_backend(spider_context.copilot.router, "loop")
    # Warm both constraint mask caches so the timed runs compare the engines,
    # not first-touch trie construction.
    vectorized.route_batch(batches[0])
    loop.route_batch(batches[0])

    loop_elapsed, loop_routes = _drive(loop, batches)
    report = benchmark.pedantic(lambda: _drive(vectorized, batches),
                                rounds=1, iterations=1)
    vectorized_elapsed, vectorized_routes = report

    agreement = sum(
        _route_key(ours) == _route_key(theirs)
        for ours, theirs in zip(vectorized_routes, loop_routes)
    ) / max(len(workload), 1)
    vectorized_qps = len(workload) / vectorized_elapsed
    loop_qps = len(workload) / loop_elapsed
    speedup = vectorized_qps / loop_qps

    table = ResultTable(
        title=f"Decode throughput: vectorized vs loop backend (batch {DECODE_BATCH})",
        columns=["backend", "questions_per_sec", "ms_per_question"],
    )
    table.add_row("loop", round(loop_qps, 1), round(1000.0 / loop_qps, 3))
    table.add_row("vectorized", round(vectorized_qps, 1), round(1000.0 / vectorized_qps, 3))
    print()
    print(table.render())

    summary = {
        "workload_questions": len(workload),
        "decode_batch": DECODE_BATCH,
        "num_beams": vectorized.config.num_beams,
        "loop_questions_per_sec": round(loop_qps, 1),
        "vectorized_questions_per_sec": round(vectorized_qps, 1),
        "speedup": round(speedup, 2),
        "backend_agreement": round(agreement, 4),
    }
    print("DECODE_SUMMARY " + json.dumps(summary, sort_keys=True))

    # The backends must agree bit-for-bit, and vectorization must at least
    # double decode throughput at the acceptance batch size.
    assert agreement == 1.0, summary
    assert speedup >= 2.0, summary
