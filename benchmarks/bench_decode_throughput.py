"""Decode throughput: the three decode backends over the routing hot path.

Routes the same seeded workload through the same trained router once per
backend -- ``loop`` (the per-beam reference path), ``vectorized`` (the
stacked bit-exact engine with incremental constraint states), and ``fast``
(the slot-dense flat-GEMM tier) -- in micro-batches of ``DECODE_BATCH``
questions.  ``--decode-backends`` (see ``benchmarks/conftest.py``) narrows
the sweep; ``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke
lanes.  Each backend is timed as the best of ``ROUNDS`` full passes, with
rounds *interleaved* across backends so noisy-neighbour windows on a shared
runner bias every backend equally instead of whichever was on the clock.

Besides the per-backend result table it prints a one-line ``DECODE_SUMMARY``
JSON (questions/sec, speedup over loop, and top-1 agreement per backend) for
the CI bench-smoke lane to scrape, and asserts the tier contracts:

* ``vectorized`` must return *bit-identical* routes to ``loop`` (hex-float
  score keys) at >= 2x its questions/sec;
* ``fast`` must hold seeded top-1 agreement >= 0.99 against ``vectorized``
  at >= 1.5x its questions/sec (the flat-GEMM tier gate).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.router import SchemaRouter
from repro.utils.tables import ResultTable

#: Micro-batch size under test (the acceptance bars are pinned at batch 8).
DECODE_BATCH = 8
#: Timed passes per backend; speedup gates use the median of the per-round
#: paired ratios and the table reports each backend's best pass.
ROUNDS = 5
#: ``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke lanes.
NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "200"))


def _route_key(routes) -> list[tuple]:
    return [(route.database, route.tables, route.score.hex()) for route in routes]


def _top1(routes) -> str | None:
    return routes[0].database if routes else None


def _clone_with_backend(router: SchemaRouter, backend: str) -> SchemaRouter:
    clone = SchemaRouter(graph=router.graph,
                         config=router.config.ablated(decode_backend=backend))
    clone.restore(router.model, router.source_vocabulary, router.target_vocabulary,
                  router.training_losses)
    return clone


def _one_pass(router: SchemaRouter, batches: list[list[str]]) -> tuple[float, list]:
    routed: list = []
    started = time.perf_counter()
    for batch in batches:
        routed.extend(router.route_batch(batch))
    return max(time.perf_counter() - started, 1e-9), routed


def test_decode_throughput(benchmark, spider_context, decode_backends):
    questions = [example.question for example in spider_context.test_examples()[:40]]
    workload = [questions[index % len(questions)] for index in range(NUM_REQUESTS)]
    batches = [workload[start:start + DECODE_BATCH]
               for start in range(0, len(workload), DECODE_BATCH)]

    routers = {backend: _clone_with_backend(spider_context.copilot.router, backend)
               for backend in decode_backends}
    # Warm every router (constraint tries, mask caches, parse memos) so the
    # timed passes compare the engines, not first-touch setup.
    for router in routers.values():
        router.route_batch(batches[0])

    # Rounds are interleaved -- every backend runs once per round, so a noisy
    # neighbour or a thermal dip hits all backends in the same window instead
    # of skewing whichever happened to be on the clock.  Speedups are judged
    # on the *median of the per-round paired ratios* (each ratio compares
    # passes taken back to back), which survives individual polluted rounds;
    # the table reports each backend's best pass.
    elapsed: dict[str, float] = {backend: float("inf")
                                 for backend in decode_backends}
    routes: dict[str, list] = {}
    round_times: list[dict[str, float]] = []

    def sweep_round() -> None:
        # The slow loop reference runs only in the first and last rounds
        # (cheap, but not hostage to a single noisy window); the fallback in
        # ``median_speedup`` pairs the other rounds against its best pass --
        # the conservative direction for the >= 2x vectorized gate.
        this_round: dict[str, float] = {}
        loop_round = not round_times or len(round_times) == ROUNDS - 1
        for backend, router in routers.items():
            if backend == "loop" and not loop_round:
                continue
            seconds, routed = _one_pass(router, batches)
            this_round[backend] = seconds
            if seconds < elapsed[backend]:
                elapsed[backend] = seconds
                routes[backend] = routed
        round_times.append(this_round)

    benchmark.pedantic(sweep_round, rounds=ROUNDS, iterations=1)

    def median_speedup(name: str, against: str) -> float:
        ratios = sorted(
            times.get(against, elapsed[against]) / times[name]
            for times in round_times if name in times)
        return ratios[len(ratios) // 2]

    qps = {backend: len(workload) / seconds for backend, seconds in elapsed.items()}
    reference = routes["loop"]

    def top1_agreement(name: str, against: str) -> float:
        return sum(
            _top1(ours) == _top1(theirs)
            for ours, theirs in zip(routes[name], routes[against])
        ) / max(len(workload), 1)

    table = ResultTable(
        title=f"Decode throughput by backend (batch {DECODE_BATCH})",
        columns=["backend", "questions_per_sec", "ms_per_question",
                 "speedup_vs_loop", "top1_vs_loop"],
    )
    summary_backends = {}
    for backend in decode_backends:
        agreement = top1_agreement(backend, "loop")
        speedup = median_speedup(backend, "loop")
        table.add_row(backend, round(qps[backend], 1),
                      round(1000.0 / qps[backend], 3),
                      round(speedup, 2), round(agreement, 4))
        summary_backends[backend] = {
            "questions_per_sec": round(qps[backend], 1),
            "speedup_vs_loop": round(speedup, 2),
            "top1_agreement_vs_loop": round(agreement, 4),
        }
    print()
    print(table.render())

    summary = {
        "workload_questions": len(workload),
        "decode_batch": DECODE_BATCH,
        "rounds": ROUNDS,
        "num_beams": spider_context.copilot.router.config.num_beams,
        "backends": summary_backends,
    }
    if "vectorized" in routes:
        bit_identical = all(
            _route_key(ours) == _route_key(theirs)
            for ours, theirs in zip(routes["vectorized"], reference)
        )
        summary["vectorized_bit_identical_to_loop"] = bit_identical
    if "fast" in routes and "vectorized" in routes:
        summary["fast_speedup_vs_vectorized"] = round(
            median_speedup("fast", "vectorized"), 2)
        summary["fast_top1_agreement_vs_vectorized"] = round(
            top1_agreement("fast", "vectorized"), 4)
    print("DECODE_SUMMARY " + json.dumps(summary, sort_keys=True))

    # Tier contracts (see the module docstring), gated on the *unrounded*
    # median ratios (the summary values are rounded for display only).
    if "vectorized" in routes:
        assert summary["vectorized_bit_identical_to_loop"], summary
        assert median_speedup("vectorized", "loop") >= 2.0, summary
    if "fast" in routes and "vectorized" in routes:
        assert top1_agreement("fast", "vectorized") >= 0.99, summary
        assert median_speedup("fast", "vectorized") >= 1.5, summary
