"""Table 3 reproduction: schema routing on the regular test sets."""

from __future__ import annotations

from repro.experiments.routing import routing_table


def test_table3_schema_routing(benchmark, spider_context, bird_context, fiben_context):
    contexts = [spider_context, bird_context, fiben_context]
    table = benchmark.pedantic(
        lambda: routing_table(contexts, variant="regular",
                              title="Table 3: schema routing on regular test sets"),
        rounds=1, iterations=1,
    )
    print()
    print(table.render())
    records = {record["method"]: record for record in table.to_records()}
    assert "dbcopilot" in records and "bm25" in records
    # Headline claim: the copilot beats sparse retrieval on database recall@1.
    assert float(records["dbcopilot"]["spider_like_db_R@1"]) > float(records["bm25"]["spider_like_db_R@1"])
