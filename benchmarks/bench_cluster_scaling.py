"""Cluster scaling: 4-shard scatter-gather vs single-shard serving.

Both sides serve the *same* spider-like catalog from checkpoint-loaded
weights and are driven with the same seeded Zipf workload in submit_many
waves.  Historically the cluster won even on a single core because each
shard ran a quarter of the monolithic beam budget over its own partition;
the vectorized batched decode engine (PR 4) erased that advantage -- the
monolith now advances all of a wave's beams in stacked kernel calls, so
beam-budget splitting no longer buys the shards much.  On a single core the
cluster is expected to hold rough *parity* (scatter-gather, merge, and
escalation overhead against the residual shard savings); its scaling story
is real cores via the subprocess backend.

``--backend subprocess`` (a pytest option from ``benchmarks/conftest.py``)
runs the throughput cluster on multi-process shard workers driven over the
:mod:`repro.cluster.transport` wire protocol instead of in-process threads;
``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke lanes.
Asserted properties:

* **fidelity** -- the (inproc) cluster's merged top-1 database matches the
  monolithic router's on >= 95% of the seeded workload (measured on the
  checkpoint-booted, cache-enabled ``spider_cluster`` fixture);
* **backend fidelity** -- with ``--backend subprocess``, the subprocess
  cluster's top-1 matches the inproc cluster's on >= 95% of the workload
  (scores cross the wire as hex floats, so in practice it is exact);
* **throughput** -- on cache-disabled twins (so the decode path is what is
  measured), the inproc 4-shard cluster holds >= 0.7x the single-shard
  routes/sec (a parity floor: scatter-gather must not collapse under the
  vectorized baseline; measured ~0.95x).  Both sides are measured
  ``MEASURE_ROUNDS`` times, interleaved, and gated on their best round, so
  background interference on a shared smoke core cannot sink one side of
  the ratio.  The subprocess backend pays IPC
  per wave and wins via real cores, so its throughput is *recorded* (CI
  uploads the summary) rather than gated -- smoke runners have unpredictable
  core counts.
* **wave decode** -- with ``--wave-decode`` (inproc only), the throughput
  cluster runs dense wave decode over shard-sliced vocabularies: one stacked
  kernel stream per step for the whole fleet instead of one thread-pool call
  per shard, and each shard's output head sliced to its own sub-catalog.
  This restores a real single-core win, gated at >= 1.5x the vectorized
  monolith at >= 0.99 top-1 agreement with it (measured ~1.7x / 0.995).

A one-line ``CLUSTER_SUMMARY {...}`` JSON is printed for CI scraping, like
``bench_serving_throughput``'s ``SERVING_SUMMARY``.
"""

from __future__ import annotations

import json
import os

from repro.cluster import ClusterConfig, ClusterRoutingService
from repro.serving import LoadGenerator, RoutingService, ServingConfig, WorkloadConfig
from repro.utils.tables import ResultTable

#: Zipf-skewed request stream over the full question pool (hot-shard shape).
WORKLOAD = WorkloadConfig(
    num_requests=int(os.environ.get("REPRO_BENCH_REQUESTS", "200")),
    distribution="zipf", skew=1.0, seed=29)
WAVE_SIZE = 16
#: Interleaved measurement rounds per side; each side is gated on its best
#: round.  Smoke runners share one core with background processes, so a
#: single-shot measurement of either side can be 30%+ slow -- interleaving
#: spreads the interference across both sides and best-of picks the
#: least-disturbed round (the standard minimum-time estimator).
MEASURE_ROUNDS = 3


def test_cluster_scaling(benchmark, spider_context, spider_cluster, cluster_backend,
                         wave_decode):
    if wave_decode and cluster_backend != "inproc":
        import pytest

        pytest.skip("wave decode requires the inproc backend (subprocess "
                    "workers fall back to the pool path)")
    master = spider_cluster.master_router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)
    workload = generator.workload()
    distinct = list(dict.fromkeys(workload))

    # Fidelity: merged top-1 vs the monolithic router, weighted by how often
    # each question occurs in the workload.
    monolithic = dict(zip(distinct, master.route_batch(distinct, max_candidates=1)))
    clustered = dict(zip(distinct, spider_cluster.submit_many(distinct,
                                                              max_candidates=1)))
    agreements = sum(
        1 for question in workload
        if monolithic[question] and clustered[question]
        and monolithic[question][0].database == clustered[question][0].database
    )
    agreement_rate = agreements / len(workload)

    # Throughput: identical Zipf waves through cache-free twins, so repeats
    # decode every time on both sides and routes/sec measures routing itself.
    single = RoutingService(master, ServingConfig(enable_cache=False,
                                                  enable_batching=False))
    cluster = ClusterRoutingService.from_router(
        master, ClusterConfig(num_shards=4, strategy="size_balanced",
                              enable_cache=False,
                              worker_backend=cluster_backend,
                              wave_decode=wave_decode,
                              sliced_vocabulary=wave_decode))
    backend_agreement_rate = None
    wave_agreement_rate = None
    with single, cluster:
        if wave_decode:
            assert cluster.wave_engine is not None, cluster._wave_disabled_reason
            # Wave fidelity: the wave cluster's merged top-1 vs the monolith
            # (the agreement the 1.5x speedup gate is conditioned on).
            wave_routes = dict(zip(distinct, cluster.submit_many(distinct,
                                                                 max_candidates=1)))
            wave_agreements = sum(
                1 for question in workload
                if monolithic[question] and wave_routes[question]
                and monolithic[question][0].database == wave_routes[question][0].database
            )
            wave_agreement_rate = wave_agreements / len(workload)
        if cluster_backend == "subprocess":
            # Backend fidelity: the same questions through the wire protocol
            # must reproduce the inproc cluster's routing decisions.
            over_wire = dict(zip(distinct, cluster.submit_many(distinct,
                                                               max_candidates=1)))
            backend_agreements = sum(
                1 for question in workload
                if clustered[question] and over_wire[question]
                and clustered[question][0].database == over_wire[question][0].database
            )
            backend_agreement_rate = backend_agreements / len(workload)
        single_report = generator.run_batched(single.submit_many,
                                              batch_size=WAVE_SIZE)
        cluster_report = benchmark.pedantic(
            lambda: generator.run_batched(cluster.submit_many,
                                          batch_size=WAVE_SIZE),
            rounds=1, iterations=1)
        for _ in range(MEASURE_ROUNDS - 1):
            contender = generator.run_batched(single.submit_many,
                                              batch_size=WAVE_SIZE)
            if contender.throughput_rps > single_report.throughput_rps:
                single_report = contender
            contender = generator.run_batched(cluster.submit_many,
                                              batch_size=WAVE_SIZE)
            if contender.throughput_rps > cluster_report.throughput_rps:
                cluster_report = contender
        cluster_stats = cluster.stats()
    fixture_stats = spider_cluster.stats()

    table = ResultTable(
        title="Cluster scaling: 4-shard scatter-gather vs single-shard serving",
        columns=["mode", "routes_per_sec", "p95_ms", "backend"],
    )
    table.add_row("single_shard", round(single_report.throughput_rps, 1),
                  single_report.latency["p95_ms"], "inproc")
    table.add_row("cluster_4_shards", round(cluster_report.throughput_rps, 1),
                  cluster_report.latency["p95_ms"],
                  cluster_backend + ("+wave" if wave_decode else ""))
    print()
    print(table.render())

    summary = {
        "backend": cluster_backend,
        "wave_decode": wave_decode,
        "wave_top1_agreement": (round(wave_agreement_rate, 4)
                                if wave_agreement_rate is not None else None),
        "workload_requests": cluster_report.num_requests,
        "distinct_questions": len(distinct),
        "num_shards": cluster_stats["num_shards"],
        "top1_agreement": round(agreement_rate, 4),
        "backend_top1_agreement": (round(backend_agreement_rate, 4)
                                   if backend_agreement_rate is not None else None),
        "single_shard_routes_per_sec": round(single_report.throughput_rps, 1),
        "cluster_routes_per_sec": round(cluster_report.throughput_rps, 1),
        "speedup": round(cluster_report.throughput_rps / single_report.throughput_rps, 2),
        "fixture_cache_hit_rate": fixture_stats["cache_hit_rate"],
        "p95_latency_ms": cluster_report.latency["p95_ms"],
        "escalations": cluster_stats["dispatcher"]["escalations"],
        "shard_failures": cluster_stats["dispatcher"]["shard_failures"],
        "shards_timed_out": cluster_stats["dispatcher"]["shards_timed_out"],
        "errors": cluster_report.errors,
    }
    print("CLUSTER_SUMMARY " + json.dumps(summary, sort_keys=True))

    assert cluster_report.errors == 0
    assert cluster_stats["dispatcher"]["shard_failures"] == 0
    # Fidelity bar: sharded decoding must reproduce the monolithic routing
    # decision on >= 95% of the seeded workload.
    assert agreement_rate >= 0.95, summary
    if cluster_backend == "subprocess":
        # Backend fidelity bar: the wire protocol must not change answers.
        assert backend_agreement_rate >= 0.95, summary
    elif wave_decode:
        # Wave decode restores the single-core speedup the vectorized monolith
        # erased: one stacked kernel stream for the fleet, shard-sliced
        # output heads.  Gate it, at near-perfect fidelity.
        assert wave_agreement_rate >= 0.99, summary
        assert cluster_report.throughput_rps >= 1.5 * single_report.throughput_rps, \
            summary
    else:
        # Parity floor: scatter-gather overhead must not collapse against the
        # vectorized single-shard baseline.  (Gated on the inproc backend
        # only; see the module docstring.)
        assert cluster_report.throughput_rps >= 0.7 * single_report.throughput_rps, \
            summary
