"""Cluster scaling: 4-shard scatter-gather vs single-shard serving.

Both sides serve the *same* spider-like catalog from checkpoint-loaded
weights and are driven with the same seeded Zipf workload in submit_many
waves.  Historically the cluster won even on a single core because each
shard ran a quarter of the monolithic beam budget over its own partition;
the vectorized batched decode engine (PR 4) erased that advantage -- the
monolith now advances all of a wave's beams in stacked kernel calls, so
beam-budget splitting no longer buys the shards much.  On a single core the
cluster is expected to hold rough *parity* (scatter-gather, merge, and
escalation overhead against the residual shard savings); its scaling story
is real cores via the subprocess backend.

``--backend subprocess`` (a pytest option from ``benchmarks/conftest.py``)
runs the throughput cluster on multi-process shard workers driven over the
:mod:`repro.cluster.transport` wire protocol instead of in-process threads;
``REPRO_BENCH_REQUESTS`` shrinks the seeded workload for smoke lanes.
Asserted properties:

* **fidelity** -- the (inproc) cluster's merged top-1 database matches the
  monolithic router's on >= 95% of the seeded workload (measured on the
  checkpoint-booted, cache-enabled ``spider_cluster`` fixture);
* **backend fidelity** -- with ``--backend subprocess``, the subprocess
  cluster's top-1 matches the inproc cluster's on >= 95% of the workload
  (scores cross the wire as hex floats, so in practice it is exact);
* **throughput** -- on cache-disabled twins (so the decode path is what is
  measured), the inproc 4-shard cluster holds >= 0.7x the single-shard
  routes/sec (a parity floor: scatter-gather must not collapse under the
  vectorized baseline; measured ~0.95x).  Both sides are measured
  ``MEASURE_ROUNDS`` times, interleaved, and gated on their best round, so
  background interference on a shared smoke core cannot sink one side of
  the ratio.  The subprocess backend pays IPC
  per wave and wins via real cores, so its throughput is *recorded* (CI
  uploads the summary) rather than gated -- smoke runners have unpredictable
  core counts.
* **wave decode** -- with ``--wave-decode`` (inproc only), the throughput
  cluster runs dense wave decode over shard-sliced vocabularies: one stacked
  kernel stream per step for the whole fleet instead of one thread-pool call
  per shard, and each shard's output head sliced to its own sub-catalog.
  This restores a real single-core win, gated at >= 1.5x the vectorized
  monolith at >= 0.99 top-1 agreement with it (measured ~1.7x / 0.995).

``--pipelined`` (with ``--backend subprocess``) adds a second benchmark,
:func:`test_pipelined_transport`: concurrent Zipf waves through two
subprocess clusters built from the same master -- the multiplexed protocol-3
transport (binary score payloads, many frames in flight per worker) against
its serial protocol-2 twin (``pipelined_transport=False``: hex-float JSON,
one frame in flight, the faithful pre-multiplexing transport).  Both run the
escalation cascade on every wave and serve cache-hot, so what is measured is
the wire itself; the pipelined side is gated at >= 1.3x routes/sec at
*bit-exact* top-1 agreement, and a ``TRANSPORT_SUMMARY {...}`` line records
frames/sec, bytes/route, and the in-flight depth p95 for CI scraping.

A one-line ``CLUSTER_SUMMARY {...}`` JSON is printed for CI scraping, like
``bench_serving_throughput``'s ``SERVING_SUMMARY``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cluster import ClusterConfig, ClusterRoutingService
from repro.serving import LoadGenerator, RoutingService, ServingConfig, WorkloadConfig
from repro.utils.tables import ResultTable

#: Zipf-skewed request stream over the full question pool (hot-shard shape).
WORKLOAD = WorkloadConfig(
    num_requests=int(os.environ.get("REPRO_BENCH_REQUESTS", "200")),
    distribution="zipf", skew=1.0, seed=29)
WAVE_SIZE = 16
#: Interleaved measurement rounds per side; each side is gated on its best
#: round.  Smoke runners share one core with background processes, so a
#: single-shot measurement of either side can be 30%+ slow -- interleaving
#: spreads the interference across both sides and best-of picks the
#: least-disturbed round (the standard minimum-time estimator).
MEASURE_ROUNDS = 3


def test_cluster_scaling(benchmark, spider_context, spider_cluster, cluster_backend,
                         wave_decode):
    if wave_decode and cluster_backend != "inproc":
        import pytest

        pytest.skip("wave decode requires the inproc backend (subprocess "
                    "workers fall back to the pool path)")
    master = spider_cluster.master_router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)
    workload = generator.workload()
    distinct = list(dict.fromkeys(workload))

    # Fidelity: merged top-1 vs the monolithic router, weighted by how often
    # each question occurs in the workload.
    monolithic = dict(zip(distinct, master.route_batch(distinct, max_candidates=1)))
    clustered = dict(zip(distinct, spider_cluster.submit_many(distinct,
                                                              max_candidates=1)))
    agreements = sum(
        1 for question in workload
        if monolithic[question] and clustered[question]
        and monolithic[question][0].database == clustered[question][0].database
    )
    agreement_rate = agreements / len(workload)

    # Throughput: identical Zipf waves through cache-free twins, so repeats
    # decode every time on both sides and routes/sec measures routing itself.
    single = RoutingService(master, ServingConfig(enable_cache=False,
                                                  enable_batching=False))
    cluster = ClusterRoutingService.from_router(
        master, ClusterConfig(num_shards=4, strategy="size_balanced",
                              enable_cache=False,
                              worker_backend=cluster_backend,
                              wave_decode=wave_decode,
                              sliced_vocabulary=wave_decode))
    backend_agreement_rate = None
    wave_agreement_rate = None
    with single, cluster:
        if wave_decode:
            assert cluster.wave_engine is not None, cluster._wave_disabled_reason
            # Wave fidelity: the wave cluster's merged top-1 vs the monolith
            # (the agreement the 1.5x speedup gate is conditioned on).
            wave_routes = dict(zip(distinct, cluster.submit_many(distinct,
                                                                 max_candidates=1)))
            wave_agreements = sum(
                1 for question in workload
                if monolithic[question] and wave_routes[question]
                and monolithic[question][0].database == wave_routes[question][0].database
            )
            wave_agreement_rate = wave_agreements / len(workload)
        if cluster_backend == "subprocess":
            # Backend fidelity: the same questions through the wire protocol
            # must reproduce the inproc cluster's routing decisions.
            over_wire = dict(zip(distinct, cluster.submit_many(distinct,
                                                               max_candidates=1)))
            backend_agreements = sum(
                1 for question in workload
                if clustered[question] and over_wire[question]
                and clustered[question][0].database == over_wire[question][0].database
            )
            backend_agreement_rate = backend_agreements / len(workload)
        single_report = generator.run_batched(single.submit_many,
                                              batch_size=WAVE_SIZE)
        cluster_report = benchmark.pedantic(
            lambda: generator.run_batched(cluster.submit_many,
                                          batch_size=WAVE_SIZE),
            rounds=1, iterations=1)
        for _ in range(MEASURE_ROUNDS - 1):
            contender = generator.run_batched(single.submit_many,
                                              batch_size=WAVE_SIZE)
            if contender.throughput_rps > single_report.throughput_rps:
                single_report = contender
            contender = generator.run_batched(cluster.submit_many,
                                              batch_size=WAVE_SIZE)
            if contender.throughput_rps > cluster_report.throughput_rps:
                cluster_report = contender
        cluster_stats = cluster.stats()
    fixture_stats = spider_cluster.stats()

    table = ResultTable(
        title="Cluster scaling: 4-shard scatter-gather vs single-shard serving",
        columns=["mode", "routes_per_sec", "p95_ms", "backend"],
    )
    table.add_row("single_shard", round(single_report.throughput_rps, 1),
                  single_report.latency["p95_ms"], "inproc")
    table.add_row("cluster_4_shards", round(cluster_report.throughput_rps, 1),
                  cluster_report.latency["p95_ms"],
                  cluster_backend + ("+wave" if wave_decode else ""))
    print()
    print(table.render())

    summary = {
        "backend": cluster_backend,
        "wave_decode": wave_decode,
        "wave_top1_agreement": (round(wave_agreement_rate, 4)
                                if wave_agreement_rate is not None else None),
        "workload_requests": cluster_report.num_requests,
        "distinct_questions": len(distinct),
        "num_shards": cluster_stats["num_shards"],
        "top1_agreement": round(agreement_rate, 4),
        "backend_top1_agreement": (round(backend_agreement_rate, 4)
                                   if backend_agreement_rate is not None else None),
        "single_shard_routes_per_sec": round(single_report.throughput_rps, 1),
        "cluster_routes_per_sec": round(cluster_report.throughput_rps, 1),
        "speedup": round(cluster_report.throughput_rps / single_report.throughput_rps, 2),
        "fixture_cache_hit_rate": fixture_stats["cache_hit_rate"],
        "p95_latency_ms": cluster_report.latency["p95_ms"],
        "escalations": cluster_stats["dispatcher"]["escalations"],
        "shard_failures": cluster_stats["dispatcher"]["shard_failures"],
        "shards_timed_out": cluster_stats["dispatcher"]["shards_timed_out"],
        "errors": cluster_report.errors,
    }
    print("CLUSTER_SUMMARY " + json.dumps(summary, sort_keys=True))

    assert cluster_report.errors == 0
    assert cluster_stats["dispatcher"]["shard_failures"] == 0
    # Fidelity bar: sharded decoding must reproduce the monolithic routing
    # decision on >= 95% of the seeded workload.
    assert agreement_rate >= 0.95, summary
    if cluster_backend == "subprocess":
        # Backend fidelity bar: the wire protocol must not change answers.
        assert backend_agreement_rate >= 0.95, summary
    elif wave_decode:
        # Wave decode restores the single-core speedup the vectorized monolith
        # erased: one stacked kernel stream for the fleet, shard-sliced
        # output heads.  Gate it, at near-perfect fidelity.
        assert wave_agreement_rate >= 0.99, summary
        assert cluster_report.throughput_rps >= 1.5 * single_report.throughput_rps, \
            summary
    else:
        # Parity floor: scatter-gather overhead must not collapse against the
        # vectorized single-shard baseline.  (Gated on the inproc backend
        # only; see the module docstring.)
        assert cluster_report.throughput_rps >= 0.7 * single_report.throughput_rps, \
            summary


# -- pipelined vs serial transport ---------------------------------------------
#: Concurrent waves in flight while the transport comparison measures; each
#: wave escalates (threshold 1.0), so every worker sees interleaved fast and
#: careful frames -- the shape multiplexing exists for.  Deeper than the
#: scaling bench's wave concurrency: the serial twin caps at one frame per
#: worker no matter how many waves push, so depth is what separates the twins.
PIPELINE_CONCURRENCY = 10
#: Wide waves so each route_response carries a meaningful score payload --
#: the serialization difference between the binary and hex-float-JSON forms
#: is where the single-core speedup comes from (on multi-core boxes the
#: overlap itself adds to it).  Fatter frames also amortize the per-frame
#: costs the twins share (framing, the executor hop), leaving the payload
#: encoding -- the thing being compared -- as a larger fraction of each
#: frame.
PIPELINE_WAVE_SIZE = 100
#: Candidates per question in the measured waves.  At the default (top-1)
#: each shard reply carries a single route per question and the framing
#: overhead -- identical on both sides -- swamps the payload encoding the
#: comparison exists to measure.
PIPELINE_MAX_CANDIDATES = 5
#: The careful tier runs the master's full beam budget (the fast tier runs
#: num_beams // num_shards): a genuinely heavier escalation pass whose
#: fatter candidate lists are exactly the payloads the binary form is for.
PIPELINE_CAREFUL_BEAMS = 10
#: Dispatcher pool threads; sized above PIPELINE_CONCURRENCY * shards so
#: scatter arms never queue on a pool slot and the transports see the full
#: concurrent depth.
PIPELINE_POOL = 12
#: The transport comparison drives its own, longer workload (the module
#: default is sized for the scaling fidelity gates): per-round noise on a
#: shared smoke core shrinks with round length, and this bench gates a ratio.
PIPELINE_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "400"))
#: Interleaved best-of rounds for the transport ratio (more than the scaling
#: bench's MEASURE_ROUNDS: the gate is a ratio of two measurements, so both
#: minima must converge before the ratio settles -- each side gets extra
#: shots at an undisturbed round).
PIPELINE_ROUNDS = 7


def _signature(route_lists):
    return [[(route.database, route.tables, route.score) for route in routes]
            for routes in route_lists]


def _drive_waves(cluster, waves) -> float:
    """Run ``waves`` through ``cluster`` concurrently; returns seconds taken."""
    with ThreadPoolExecutor(max_workers=PIPELINE_CONCURRENCY) as pool:
        started = time.perf_counter()
        for future in [pool.submit(cluster.submit_many, wave,
                                   max_candidates=PIPELINE_MAX_CANDIDATES)
                       for wave in waves]:
            future.result()
        return time.perf_counter() - started


def _worker_transports(cluster) -> list[dict]:
    stats = cluster.stats()
    return [worker["transport"]
            for shard in stats["shards"] for worker in shard["workers"]]


def _depth_p95(transports: list[dict]) -> int:
    """p95 of the in-flight depth distribution, merged across workers."""
    merged: dict[int, int] = {}
    for transport in transports:
        for depth, count in transport.get("in_flight_depths", {}).items():
            merged[int(depth)] = merged.get(int(depth), 0) + count
    total = sum(merged.values())
    if total == 0:
        return 0
    cumulative = 0
    for depth in sorted(merged):
        cumulative += merged[depth]
        if cumulative >= 0.95 * total:
            return depth
    return max(merged)


def test_pipelined_transport(benchmark, spider_context, cluster_backend, pipelined):
    """Multiplexed protocol-3 transport vs its serial protocol-2 twin.

    Cache-hot twins under concurrent escalating waves: per-request decode
    cost is a dictionary lookup in the child, so routes/sec measures the
    transport itself -- framing, payload encoding, and how many frames a
    worker carries at once.  The pipelined side must answer bit-identically
    (same merged routes, same 64-bit scores) and >= 1.3x faster.
    """
    import pytest

    if not pipelined:
        pytest.skip("pass --pipelined to run the transport comparison")
    if cluster_backend != "subprocess":
        pytest.skip("the transport comparison needs --backend subprocess")

    master = spider_context.copilot.router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    workload = LoadGenerator(questions, WorkloadConfig(
        num_requests=PIPELINE_REQUESTS, distribution="zipf",
        skew=1.0, seed=29)).workload()
    waves = [workload[index:index + PIPELINE_WAVE_SIZE]
             for index in range(0, len(workload), PIPELINE_WAVE_SIZE)]
    distinct = list(dict.fromkeys(workload))

    def build(pipelined_transport: bool) -> ClusterRoutingService:
        return ClusterRoutingService.from_router(master, ClusterConfig(
            num_shards=2, strategy="size_balanced", worker_backend="subprocess",
            # threshold 1.0 fires the cascade on every wave: merged top-1
            # softmax weight is always < 1, so careful frames always overlap
            # fast frames on the same workers
            escalation_threshold=1.0,
            escalation_num_beams=PIPELINE_CAREFUL_BEAMS,
            max_workers=PIPELINE_POOL,
            cache_size=4096,
            # Tracing off on both twins: span bookkeeping is identical on
            # either side and only dilutes the wire fraction being compared.
            enable_tracing=False,
            pipelined_transport=pipelined_transport))

    fast = build(True)
    serial = build(False)
    try:
        protocols = {t["protocol"] for t in _worker_transports(fast)} \
            | {t["pipelined"] for t in _worker_transports(fast)}
        assert protocols == {3, True}, protocols
        serial_protocols = {t["protocol"] for t in _worker_transports(serial)} \
            | {t["pipelined"] for t in _worker_transports(serial)}
        assert serial_protocols == {2, False}, serial_protocols

        # Fidelity first (also warms every cache on both tiers of both
        # clusters: threshold 1.0 escalates each distinct question once, and
        # the warmup shares the measured waves' max_candidates so it warms
        # the exact cache keys the measurement hits).
        answers_fast = fast.submit_many(distinct,
                                        max_candidates=PIPELINE_MAX_CANDIDATES)
        answers_serial = serial.submit_many(distinct,
                                            max_candidates=PIPELINE_MAX_CANDIDATES)
        assert _signature(answers_fast) == _signature(answers_serial)
        agreement = sum(
            1 for ours, theirs in zip(answers_fast, answers_serial)
            if ours and theirs and ours[0].database == theirs[0].database
        ) / len(distinct)
        assert agreement == 1.0

        frames_before = sum(t["requests_sent"] for t in _worker_transports(fast))

        # Interleaved best-of-N: same waves, alternating sides, best round
        # each (minimum-time estimator; see PIPELINE_ROUNDS above).
        fast_seconds = benchmark.pedantic(lambda: _drive_waves(fast, waves),
                                          rounds=1, iterations=1)
        fast_elapsed_total = fast_seconds
        serial_seconds = _drive_waves(serial, waves)
        for _ in range(PIPELINE_ROUNDS - 1):
            round_seconds = _drive_waves(fast, waves)
            fast_elapsed_total += round_seconds
            fast_seconds = min(fast_seconds, round_seconds)
            serial_seconds = min(serial_seconds, _drive_waves(serial, waves))

        fast_rps = len(workload) / fast_seconds
        serial_rps = len(workload) / serial_seconds
        transports = _worker_transports(fast)
        frames = sum(t["requests_sent"] for t in transports) - frames_before
        wire_bytes = sum(t["bytes_sent"] + t["bytes_received"] for t in transports)
        routes_served = len(workload) * PIPELINE_ROUNDS + len(distinct)
        summary = {
            "backend": "subprocess",
            "workload_requests": len(workload),
            "concurrency": PIPELINE_CONCURRENCY,
            "pipelined_routes_per_sec": round(fast_rps, 1),
            "serial_routes_per_sec": round(serial_rps, 1),
            "speedup": round(fast_rps / serial_rps, 2),
            "top1_agreement": agreement,
            "frames_per_sec": round(frames / fast_elapsed_total, 1),
            "bytes_per_route": round(wire_bytes / routes_served, 1),
            "in_flight_p95": _depth_p95(transports),
            "max_in_flight": max(t["max_in_flight"] for t in transports),
            "pipelined_frames": sum(t["pipelined_frames"] for t in transports),
            "binary_responses": sum(t["binary_responses"] for t in transports),
            "escalations": fast.stats()["dispatcher"]["escalations"],
        }
        print()
        print("TRANSPORT_SUMMARY " + json.dumps(summary, sort_keys=True))

        # The multiplexed transport must actually carry overlapping frames...
        assert summary["max_in_flight"] >= 2, summary
        assert summary["pipelined_frames"] >= 1, summary
        assert summary["binary_responses"] >= 1, summary
        # ...and convert them into throughput against the faithful serial twin.
        assert fast_rps >= 1.3 * serial_rps, summary
    finally:
        fast.close()
        serial.close()
