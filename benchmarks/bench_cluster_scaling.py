"""Cluster scaling: 4-shard scatter-gather vs single-shard serving.

Both sides serve the *same* spider-like catalog from checkpoint-loaded
weights and are driven with the same seeded Zipf workload in submit_many
waves.  The cluster wins on a single core because each shard runs a standard
beam search with a quarter of the monolithic beam budget over its own
partition; the cross-shard merge then recovers the global top-k.  Two
properties are asserted:

* **fidelity** -- the cluster's merged top-1 database matches the monolithic
  router's on >= 95% of the 200-request workload (measured on the
  checkpoint-booted, cache-enabled ``spider_cluster`` fixture);
* **throughput** -- on cache-disabled twins (so the decode path is what is
  measured, not cache-hit bookkeeping), the 4-shard cluster sustains
  >= 1.5x the single-shard routes/sec.

A one-line ``CLUSTER_SUMMARY {...}`` JSON is printed for CI scraping, like
``bench_serving_throughput``'s ``SERVING_SUMMARY``.
"""

from __future__ import annotations

import json

from repro.cluster import ClusterConfig, ClusterRoutingService
from repro.serving import LoadGenerator, RoutingService, ServingConfig, WorkloadConfig
from repro.utils.tables import ResultTable

#: Zipf-skewed request stream over the full question pool (hot-shard shape).
WORKLOAD = WorkloadConfig(num_requests=200, distribution="zipf", skew=1.0, seed=29)
WAVE_SIZE = 16


def test_cluster_scaling(benchmark, spider_context, spider_cluster):
    master = spider_cluster.master_router
    questions = [example.question for example in spider_context.test_examples()[:40]]
    generator = LoadGenerator(questions, WORKLOAD)
    workload = generator.workload()
    distinct = list(dict.fromkeys(workload))

    # Fidelity: merged top-1 vs the monolithic router, weighted by how often
    # each question occurs in the workload.
    monolithic = dict(zip(distinct, master.route_batch(distinct, max_candidates=1)))
    clustered = dict(zip(distinct, spider_cluster.submit_many(distinct,
                                                              max_candidates=1)))
    agreements = sum(
        1 for question in workload
        if monolithic[question] and clustered[question]
        and monolithic[question][0].database == clustered[question][0].database
    )
    agreement_rate = agreements / len(workload)

    # Throughput: identical Zipf waves through cache-free twins, so repeats
    # decode every time on both sides and routes/sec measures routing itself.
    single = RoutingService(master, ServingConfig(enable_cache=False,
                                                  enable_batching=False))
    cluster = ClusterRoutingService.from_router(
        master, ClusterConfig(num_shards=4, strategy="size_balanced",
                              enable_cache=False))
    with single, cluster:
        single_report = generator.run_batched(single.submit_many,
                                              batch_size=WAVE_SIZE)
        cluster_report = benchmark.pedantic(
            lambda: generator.run_batched(cluster.submit_many,
                                          batch_size=WAVE_SIZE),
            rounds=1, iterations=1)
        cluster_stats = cluster.stats()
    fixture_stats = spider_cluster.stats()

    table = ResultTable(
        title="Cluster scaling: 4-shard scatter-gather vs single-shard serving",
        columns=["mode", "routes_per_sec", "p95_ms", "shard_beams"],
    )
    table.add_row("single_shard", round(single_report.throughput_rps, 1),
                  single_report.latency["p95_ms"], master.config.num_beams)
    shard_beams = cluster.shards[0].workers[0].router.config.num_beams
    table.add_row("cluster_4_shards", round(cluster_report.throughput_rps, 1),
                  cluster_report.latency["p95_ms"], shard_beams)
    print()
    print(table.render())

    summary = {
        "workload_requests": cluster_report.num_requests,
        "distinct_questions": len(distinct),
        "num_shards": cluster_stats["num_shards"],
        "shard_num_beams": shard_beams,
        "top1_agreement": round(agreement_rate, 4),
        "single_shard_routes_per_sec": round(single_report.throughput_rps, 1),
        "cluster_routes_per_sec": round(cluster_report.throughput_rps, 1),
        "speedup": round(cluster_report.throughput_rps / single_report.throughput_rps, 2),
        "fixture_cache_hit_rate": fixture_stats["cache_hit_rate"],
        "p95_latency_ms": cluster_report.latency["p95_ms"],
        "escalations": cluster_stats["dispatcher"]["escalations"],
        "shard_failures": cluster_stats["dispatcher"]["shard_failures"],
        "errors": cluster_report.errors,
    }
    print("CLUSTER_SUMMARY " + json.dumps(summary, sort_keys=True))

    assert cluster_report.errors == 0
    assert cluster_stats["dispatcher"]["shard_failures"] == 0
    # Fidelity bar: sharded decoding must reproduce the monolithic routing
    # decision on >= 95% of the seeded 200-question workload.
    assert agreement_rate >= 0.95, summary
    # Scaling bar: four shards with quarter beam budgets must beat one shard.
    assert cluster_report.throughput_rps >= 1.5 * single_report.throughput_rps, summary
