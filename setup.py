"""Compatibility shim for `python setup.py develop/install` workflows.

pip itself uses the in-tree PEP 517 backend (`repro_build_backend.py`);
all metadata lives in pyproject.toml, which setuptools >= 61 reads here.
"""

from setuptools import setup

setup()
